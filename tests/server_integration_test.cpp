// Serve-mode integration: a real Server on a real AF_UNIX socket, driven
// by a raw in-process client speaking sasta-rpc-v1 (docs/SERVER.md).
//
// The tentpole contracts under test:
//   * a socket `analyze` answers byte-for-byte what the batch pipeline
//     (StaTool + format_path + format_timing_report) computes for the same
//     design and options;
//   * a warm repeat demonstrably skips the search (sources.searched == 0,
//     server.cache_reuse advances) yet returns the identical payload;
//   * an ECO request re-analyzed incrementally equals a force_cold full
//     recompute over the same socket;
//   * protocol errors carry stable codes, and shutdown drains to exit 0.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "cell/library_builder.h"
#include "netlist/bench_parser.h"
#include "netlist/techmap.h"
#include "server/protocol.h"
#include "server/server.h"
#include "sta/report.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"
#include "util/json.h"

namespace sasta {
namespace {

using util::JsonValue;

/// Minimal blocking line client for one AF_UNIX connection.
class LineClient {
 public:
  explicit LineClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_TRUE_OK();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  /// Sends one raw line and blocks for one response line.
  JsonValue call_raw(const std::string& line) {
    std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return JsonValue();
      off += static_cast<std::size_t>(n);
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        const std::string resp = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        JsonValue doc;
        std::string err;
        EXPECT_TRUE(JsonValue::parse(resp, &doc, &err))
            << err << " in: " << resp;
        return doc;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return JsonValue();
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Builds {"id", "method", "params"} and round-trips it.
  JsonValue call(const std::string& method, JsonValue params) {
    JsonValue req = JsonValue::object();
    req.set("id", JsonValue::number(next_id_++));
    req.set("method", JsonValue::string(method));
    req.set("params", std::move(params));
    return call_raw(req.dump());
  }

 private:
  void ASSERT_TRUE_OK() { ASSERT_GE(fd_, 0); }

  int fd_ = -1;
  bool connected_ = false;
  long next_id_ = 1;
  std::string buffer_;
};

/// A Server running on its own thread for one test's lifetime.
class ServerFixture {
 public:
  explicit ServerFixture(server::ServerOptions opt)
      : server_(std::move(opt)) {
    thread_ = std::thread([this] { exit_code_ = server_.run(); });
    // The socket is bound before listening() flips.
    for (int i = 0; i < 2000 && !server_.listening(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ~ServerFixture() {
    if (thread_.joinable()) {
      server_.request_stop();
      thread_.join();
    }
  }

  server::Server& server() { return server_; }
  /// Joins the server thread (after a shutdown request) and returns the
  /// process-style exit code run() produced.
  int join() {
    thread_.join();
    return exit_code_;
  }
  long counter(const std::string& name) {
    const util::MetricsSnapshot snap = server_.metrics().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

 private:
  server::Server server_;
  std::thread thread_;
  int exit_code_ = -1;
};

server::ServerOptions test_options(const std::string& socket_path) {
  server::ServerOptions opt;
  opt.socket_path = socket_path;
  opt.charcache_dir = "sasta-test-charcache";  // share the suite's cache
  opt.session_defaults.tool.finder.num_threads = 2;
  opt.session_defaults.tool.finder.justify_cache =
      sta::JustifyCacheMode::kShared;
  return opt;
}

std::string socket_path(const std::string& tag) {
  return ::testing::TempDir() + "sasta-" + tag + ".sock";
}

/// The batch-pipeline answer for c17 with the same options a serve-mode
/// session uses: full enumeration, selection at keep_worst/keep_fastest,
/// and the --report text renderings.
struct BatchAnswer {
  std::string report;
  std::vector<std::string> path_keys;
};

BatchAnswer batch_c17(long paths, long fastest, double required_ns) {
  const netlist::Netlist nl =
      netlist::tech_map(
          netlist::parse_bench_string(netlist::c17_bench_text(), "c17"),
          testing::test_library())
          .netlist;
  const charlib::CharLibrary& cl = testing::test_charlib();
  sta::StaToolOptions sopt;
  sopt.keep_worst = paths;
  sopt.keep_fastest = fastest;
  sopt.finder.num_threads = 2;
  sopt.finder.justify_cache = sta::JustifyCacheMode::kShared;
  sta::StaTool tool(nl, cl, tech::technology("90nm"), sopt);
  const sta::StaResult res = tool.run();

  BatchAnswer out;
  out.report = sta::format_path(nl, cl, res.critical());
  const sta::TimingReport rep =
      sta::build_timing_report(nl, res, required_ns * 1e-9);
  out.report += "\n" + sta::format_timing_report(nl, rep);
  for (const sta::TimedPath& tp : res.paths) {
    char buf[64];
    // Keys carry the exact ps value the server puts on the wire
    // (delay * 1e12); JSON numbers round-trip bit-exactly, so %a of
    // both sides is an equality check, not a tolerance check.
    std::snprintf(buf, sizeof(buf), "%a", tp.delay * 1e12);
    out.path_keys.push_back(nl.net(tp.path.source).name + ">" +
                            nl.net(tp.path.sink).name + ":" + buf);
  }
  return out;
}

/// Extracts the same source>sink:delay_ps keys from a response's paths array.
std::vector<std::string> response_path_keys(const JsonValue& result) {
  std::vector<std::string> keys;
  const JsonValue& paths = result.get("paths");
  for (std::size_t i = 0; i < paths.size(); ++i) {
    const JsonValue& p = paths.at(i);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", p.get("delay_ps").as_double());
    keys.push_back(p.get("source").as_string() + ">" +
                   p.get("sink").as_string() + ":" + buf);
  }
  return keys;
}

TEST(ServerIntegration, PingHelloAndProtocolErrors) {
  ServerFixture fx(test_options(socket_path("proto")));
  ASSERT_TRUE(fx.server().listening());
  LineClient client(socket_path("proto"));
  ASSERT_TRUE(client.connected());

  JsonValue resp = client.call("ping", JsonValue::object());
  EXPECT_EQ(resp.get("version").as_string(), server::kProtocolVersion);
  EXPECT_TRUE(resp.get("result").get("pong").as_bool());

  resp = client.call("hello", JsonValue::object());
  EXPECT_EQ(resp.get("result").get("protocol").as_string(),
            server::kProtocolVersion);
  EXPECT_GE(resp.get("result").get("methods").size(), 7u);

  // Malformed JSON → E_PARSE with a null id.
  resp = client.call_raw("{nope");
  EXPECT_EQ(resp.get("error").get("code").as_string(), server::kErrParse);
  EXPECT_TRUE(resp.get("id").is_null());

  // Unknown method → E_NO_METHOD; the id echoes back.
  resp = client.call("frobnicate", JsonValue::object());
  EXPECT_EQ(resp.get("error").get("code").as_string(),
            server::kErrNoMethod);
  EXPECT_TRUE(resp.get("id").is_number());

  // analyze without a loaded design → E_NO_SESSION.
  resp = client.call("analyze", JsonValue::object());
  EXPECT_EQ(resp.get("error").get("code").as_string(),
            server::kErrNoSession);

  // Requests and errors were counted.
  EXPECT_GE(fx.counter("server.requests"), 5);
  EXPECT_GE(fx.counter("server.errors"), 3);
}

TEST(ServerIntegration, AnalyzeMatchesBatchAndWarmRepeatSkipsSearch) {
  ServerFixture fx(test_options(socket_path("warm")));
  ASSERT_TRUE(fx.server().listening());
  LineClient client(socket_path("warm"));
  ASSERT_TRUE(client.connected());

  JsonValue resp = client.call("load", [] {
    JsonValue p = JsonValue::object();
    p.set("netlist", JsonValue::string("c17"));
    return p;
  }());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  const long session = resp.get("result").get("session").as_long();
  EXPECT_EQ(resp.get("result").get("circuit").as_string(), "c17");
  EXPECT_EQ(resp.get("result").get("sources").as_long(), 5);

  auto analyze_params = [session] {
    JsonValue p = JsonValue::object();
    p.set("session", JsonValue::number(session));
    p.set("paths", JsonValue::number(4L));
    p.set("fastest", JsonValue::number(2L));
    p.set("required_ns", JsonValue::number(1.0));
    return p;
  };

  // Cold: every source searched; the payload equals the batch pipeline's.
  resp = client.call("analyze", analyze_params());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  const JsonValue cold = resp.get("result");
  EXPECT_FALSE(cold.get("truncated").as_bool(true));
  EXPECT_EQ(cold.get("sources").get("searched").as_long(), 5);
  const BatchAnswer batch = batch_c17(4, 2, 1.0);
  EXPECT_EQ(cold.get("report").as_string(), batch.report)
      << "serve-mode report text must be byte-identical to batch --report";
  EXPECT_EQ(response_path_keys(cold), batch.path_keys);

  // Warm repeat: nothing searched, nothing re-timed — and the exact same
  // paths and report bytes come back from the per-source caches.
  resp = client.call("analyze", analyze_params());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  const JsonValue warm = resp.get("result");
  EXPECT_EQ(warm.get("sources").get("searched").as_long(), 0);
  EXPECT_EQ(warm.get("sources").get("reused").as_long(), 5);
  EXPECT_EQ(warm.get("sources").get("retimed").as_long(), 0);
  EXPECT_EQ(warm.get("report").as_string(), batch.report);
  EXPECT_EQ(response_path_keys(warm), batch.path_keys);
  EXPECT_GE(fx.counter("server.cache_reuse"), 1);
  EXPECT_GE(fx.counter("server.sources_reused"), 5);

  // A second load of the same tech/profile reuses the characterized
  // library (the parse+characterize phases never rerun).
  const long reuse_before = fx.counter("server.cache_reuse");
  resp = client.call("load", [] {
    JsonValue p = JsonValue::object();
    p.set("netlist", JsonValue::string("c17"));
    return p;
  }());
  ASSERT_TRUE(resp.find("result") != nullptr);
  EXPECT_TRUE(resp.get("result").get("charlib_reused").as_bool());
  EXPECT_GT(fx.counter("server.cache_reuse"), reuse_before);
}

TEST(ServerIntegration, EcoIncrementalEqualsForceColdOverTheSocket) {
  ServerFixture fx(test_options(socket_path("eco")));
  ASSERT_TRUE(fx.server().listening());
  LineClient client(socket_path("eco"));
  ASSERT_TRUE(client.connected());

  JsonValue resp = client.call("load", [] {
    JsonValue p = JsonValue::object();
    p.set("netlist", JsonValue::string("c17"));
    return p;
  }());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();

  auto base_params = [] {
    JsonValue p = JsonValue::object();
    p.set("paths", JsonValue::number(6L));
    p.set("required_ns", JsonValue::number(1.0));
    return p;
  };
  resp = client.call("analyze", base_params());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();

  // Unknown instance / cell surface their dedicated codes first.
  JsonValue bad = base_params();
  bad.set("op", JsonValue::string("swap_gate"));
  bad.set("instance", JsonValue::string("nonesuch"));
  bad.set("cell", JsonValue::string("NOR2"));
  resp = client.call("eco", bad);
  EXPECT_EQ(resp.get("error").get("code").as_string(),
            server::kErrNoInstance);
  bad = base_params();
  bad.set("op", JsonValue::string("swap_gate"));
  bad.set("instance", JsonValue::string("g0"));
  bad.set("cell", JsonValue::string("NOCELL9"));
  resp = client.call("eco", bad);
  EXPECT_EQ(resp.get("error").get("code").as_string(), server::kErrNoCell);

  // The real edit: swap the driver of PO 23 to a NOR2, incrementally.
  JsonValue eco = base_params();
  eco.set("op", JsonValue::string("swap_gate"));
  eco.set("instance", JsonValue::string("g0"));
  eco.set("cell", JsonValue::string("NOR2"));
  resp = client.call("eco", eco);
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  const JsonValue incremental = resp.get("result");
  EXPECT_TRUE(incremental.get("eco").get("function_changed").as_bool());
  EXPECT_GT(incremental.get("eco").get("dirty_sources").as_long(), 0);
  EXPECT_GE(fx.counter("server.eco_requests"), 3);
  EXPECT_GE(fx.counter("server.cones_invalidated"), 1);

  // force_cold re-derives everything from scratch on the edited design:
  // the incremental payload must match it byte for byte.
  JsonValue cold_params = base_params();
  cold_params.set("force_cold", JsonValue::boolean(true));
  resp = client.call("analyze", cold_params);
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  const JsonValue cold = resp.get("result");
  EXPECT_EQ(cold.get("sources").get("searched").as_long(),
            cold.get("sources").get("total").as_long());
  EXPECT_EQ(response_path_keys(incremental), response_path_keys(cold));
  EXPECT_EQ(incremental.get("report").as_string(),
            cold.get("report").as_string());
}

TEST(ServerIntegration, RunReportEmbedsAsSingleLineJson) {
  ServerFixture fx(test_options(socket_path("report")));
  ASSERT_TRUE(fx.server().listening());
  LineClient client(socket_path("report"));
  ASSERT_TRUE(client.connected());

  client.call("load", [] {
    JsonValue p = JsonValue::object();
    p.set("netlist", JsonValue::string("c17"));
    return p;
  }());
  const JsonValue resp = client.call("analyze", JsonValue::object());
  ASSERT_TRUE(resp.find("result") != nullptr) << resp.dump();
  // The embedded run report survived the single-line framing as real,
  // parseable JSON with its schema tag intact.
  const JsonValue& rr = resp.get("result").get("run_report");
  ASSERT_TRUE(rr.is_object() || rr.kind() == JsonValue::Kind::kRaw);
  JsonValue parsed;
  std::string err;
  ASSERT_TRUE(JsonValue::parse(rr.dump(), &parsed, &err)) << err;
  EXPECT_EQ(parsed.get("schema").as_string(), "sasta-run-report-v1");
}

TEST(ServerIntegration, ShutdownDrainsAndExitsZero) {
  ServerFixture fx(test_options(socket_path("stop")));
  ASSERT_TRUE(fx.server().listening());
  LineClient client(socket_path("stop"));
  ASSERT_TRUE(client.connected());

  const JsonValue resp = client.call("shutdown", JsonValue::object());
  EXPECT_TRUE(resp.get("result").get("stopping").as_bool());
  EXPECT_EQ(fx.join(), 0);
}

}  // namespace
}  // namespace sasta
