#include <gtest/gtest.h>

#include <set>

#include "baseline/baseline_tool.h"
#include "cell/library_builder.h"
#include "charlib/characterizer.h"
#include "netlist/fig4_testcircuit.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"

namespace sasta {
namespace {

const charlib::CharLibrary& cl() { return testing::test_charlib("90nm"); }

TEST(Fig4, StructureMatchesPaper) {
  const auto fig4 = netlist::build_fig4_circuit(testing::test_library());
  EXPECT_EQ(fig4.nl.primary_inputs().size(), 7u);
  EXPECT_EQ(fig4.nl.primary_outputs().size(), 1u);
  EXPECT_EQ(fig4.nl.complex_gate_count(), 1);
  EXPECT_NO_THROW(fig4.nl.validate());
}

// The paper's key demonstration: exactly TWO sensitization vectors exist for
// the critical course through AO22 input A (Case 1 with C=D=0 is logically
// impossible because D = !C by construction).
TEST(Fig4, CriticalCourseHasExactlyTwoVectors) {
  const auto fig4 = netlist::build_fig4_circuit(testing::test_library());
  sta::PathFinderOptions popt;
  popt.justify_backtrack_budget = -1;
  sta::PathFinder finder(fig4.nl, cl(), popt);
  std::set<int> vecs;
  int count = 0;
  for (const auto& p : finder.find_all()) {
    if (p.source != fig4.n1) continue;
    if (p.launch_edge != spice::Edge::kFall) continue;
    if (p.steps.size() != 4) continue;
    ++count;
    ASSERT_EQ(p.steps[2].pin, 0);  // AO22 input A
    vecs.insert(p.steps[2].vector_id);
  }
  EXPECT_EQ(count, 2);
  EXPECT_EQ(vecs, (std::set<int>{1, 2}));  // Cases 2 and 3; Case 1 impossible
}

// The developed tool ranks the Case-2 sensitization slower than Case 3
// (paper Table 5's two rows), and the baseline reports only one vector.
TEST(Fig4, DevelopedToolIdentifiesWorstVectorBaselineDoesNot) {
  const auto fig4 = netlist::build_fig4_circuit(testing::test_library());
  const auto& tech = tech::technology("90nm");
  sta::StaTool tool(fig4.nl, cl(), tech);
  const auto res = tool.run();
  double case2 = -1, case3 = -1;
  for (const auto& tp : res.paths) {
    if (tp.path.source != fig4.n1 ||
        tp.path.launch_edge != spice::Edge::kFall ||
        tp.path.steps.size() != 4) {
      continue;
    }
    if (tp.path.steps[2].vector_id == 1) case2 = tp.delay;
    if (tp.path.steps[2].vector_id == 2) case3 = tp.delay;
  }
  ASSERT_GT(case2, 0.0);
  ASSERT_GT(case3, 0.0);
  // AO22 input A falling: Case 2 (C=1) is the slow one (charge sharing).
  EXPECT_GT(case2, case3);

  baseline::BaselineTool base(fig4.nl, cl(), tech);
  const auto bres = base.run();
  int reported = -1;
  for (const auto& bp : bres.paths) {
    if (bp.outcome.status != baseline::SensitizeStatus::kTrue) continue;
    if (bp.structural.source != fig4.n1 ||
        bp.structural.launch_edge != spice::Edge::kFall ||
        bp.structural.steps.size() != 4) {
      continue;
    }
    reported = bp.outcome.reported_vectors[2];
    break;  // the baseline reports exactly one vector per path
  }
  ASSERT_GE(reported, 0);
  // The baseline's minimal-cube justification lands on the easy Case 3
  // (C=0 via a single PI), underestimating the worst delay.
  EXPECT_EQ(reported, 2);
}

}  // namespace
}  // namespace sasta
