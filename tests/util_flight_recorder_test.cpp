// Flight recorder unit battery: ring wraparound and lapped-window
// discard, activity-slot bookkeeping, torn-read safety under a concurrent
// writer (the TSan matrix runs this file), the async-signal-safe dump
// format, the stall report/watchdog, and the signal plumbing (SIGUSR1
// on-demand dump, SIGINT cooperative interrupt).
#include "util/flight_recorder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace sasta::util {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

FlightRecorder::Config small_config(unsigned lanes, std::size_t events) {
  FlightRecorder::Config cfg;
  cfg.lanes = lanes;
  cfg.events_per_lane = events;
  return cfg;
}

// --- Ring semantics ---------------------------------------------------------

TEST(FlightLaneRing, CapacityRoundsUpToAPowerOfTwoWithFloorEight) {
  EXPECT_EQ(FlightRecorder(small_config(1, 0)).lane(0).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(small_config(1, 5)).lane(0).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(small_config(1, 9)).lane(0).capacity(), 16u);
  EXPECT_EQ(FlightRecorder(small_config(1, 4096)).lane(0).capacity(), 4096u);
}

TEST(FlightLaneRing, WraparoundKeepsNewestAndCountsAllEvents) {
  FlightRecorder rec(small_config(1, 8));
  FlightLane& lane = rec.lane(0);
  for (std::uint32_t i = 0; i < 20; ++i) {
    lane.record(FlightEventKind::kTrial, static_cast<std::uint16_t>(i), i,
                i * 2);
  }
  EXPECT_EQ(lane.events_recorded(), 20u);
  EXPECT_EQ(rec.total_events(), 20u);

  // A full snapshot of a wrapped ring yields capacity-1 events: the slot
  // that physically aliases a hypothetical in-flight write is discarded
  // even in quiescence (the reader cannot tell the difference).
  const std::vector<FlightEvent> all = lane.snapshot(100);
  ASSERT_EQ(all.size(), 7u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const std::uint64_t seq = 13 + i;  // oldest first: seq 13..19
    EXPECT_EQ(all[i].seq, seq);
    EXPECT_EQ(all[i].kind, static_cast<std::uint8_t>(FlightEventKind::kTrial));
    EXPECT_EQ(all[i].arg, seq);
    EXPECT_EQ(all[i].a, seq);
    EXPECT_EQ(all[i].b, seq * 2);
  }

  const std::vector<FlightEvent> last3 = lane.snapshot(3);
  ASSERT_EQ(last3.size(), 3u);
  EXPECT_EQ(last3.front().seq, 17u);
  EXPECT_EQ(last3.back().seq, 19u);
}

TEST(FlightLaneRing, UnwrappedSnapshotReturnsEverything) {
  FlightRecorder rec(small_config(1, 8));
  FlightLane& lane = rec.lane(0);
  lane.record(FlightEventKind::kSourceClaim, 0, 42, 0);
  lane.record(FlightEventKind::kPathRecorded, 1, 3, 99);
  const std::vector<FlightEvent> all = lane.snapshot(100);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].kind,
            static_cast<std::uint8_t>(FlightEventKind::kSourceClaim));
  EXPECT_EQ(all[0].a, 42u);
  EXPECT_EQ(all[1].kind,
            static_cast<std::uint8_t>(FlightEventKind::kPathRecorded));
  EXPECT_EQ(all[1].arg, 1u);
  EXPECT_EQ(all[1].b, 99u);
}

TEST(FlightLaneActivity, SlotTracksSourceGateAndProgress) {
  FlightRecorder rec(small_config(1, 8));
  FlightLane& lane = rec.lane(0);
  FlightLane::Activity a = lane.activity();
  EXPECT_EQ(a.source, kFlightIdle);
  EXPECT_EQ(a.gate, kFlightIdle);

  lane.set_source(7);
  lane.set_gate(12, 3);
  lane.count_trial();
  lane.count_trial();
  a = lane.activity();
  EXPECT_EQ(a.source, 7u);
  EXPECT_EQ(a.gate, 12u);
  EXPECT_EQ(a.depth, 3u);
  EXPECT_EQ(a.trials, 2u);
  EXPECT_EQ(a.trials - a.progress_trials, 2u) << "no progress yet";

  lane.note_path_recorded();
  a = lane.activity();
  EXPECT_EQ(a.paths, 1u);
  EXPECT_EQ(a.trials - a.progress_trials, 0u) << "path resets the gap";

  lane.count_trial();
  lane.note_source_done();
  a = lane.activity();
  EXPECT_EQ(a.sources_done, 1u);
  EXPECT_EQ(a.trials - a.progress_trials, 0u) << "source done resets too";

  lane.set_idle();
  a = lane.activity();
  EXPECT_EQ(a.source, kFlightIdle);
  EXPECT_EQ(a.gate, kFlightIdle);
  EXPECT_EQ(a.depth, 0u);
}

// Torn-read safety: a writer laps the ring continuously while readers
// snapshot and a dumper serializes.  Every event a snapshot returns must
// be internally consistent (the writer always stores a == b and a valid
// kind), and sequence numbers must be strictly increasing.  Run under
// TSan this also proves the slot/atomic protocol is race-free.
TEST(FlightLaneConcurrency, SnapshotsAreConsistentUnderActiveWriter) {
  FlightRecorder rec(small_config(1, 64));
  FlightLane& lane = rec.lane(0);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint32_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      lane.record(FlightEventKind::kTrial, 7, i, i);
      lane.set_gate(i, i & 0xff);
      lane.count_trial();
      ++i;
    }
  });

  std::thread dumper([&] {
    const std::string path = temp_path("sasta_flight_concurrent.dump");
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(rec.dump_to_path(path.c_str()));
    }
    std::filesystem::remove(path);
  });

  // On a loaded single-core host the fixed rounds can all run before the
  // writer is ever scheduled, so keep snapshotting (yielding on empty)
  // until at least one populated snapshot was verified.
  long checked = 0;
  for (int round = 0; round < 2000 || checked == 0; ++round) {
    const std::vector<FlightEvent> snap = lane.snapshot(32);
    if (snap.empty()) std::this_thread::yield();
    for (std::size_t i = 0; i < snap.size(); ++i) {
      EXPECT_EQ(snap[i].a, snap[i].b);
      EXPECT_EQ(snap[i].kind,
                static_cast<std::uint8_t>(FlightEventKind::kTrial));
      EXPECT_EQ(snap[i].arg, 7u);
      if (i > 0) {
        EXPECT_LT(snap[i - 1].seq, snap[i].seq);
      }
      ++checked;
    }
    lane.activity();  // concurrent activity reads must be race-free too
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  dumper.join();
  EXPECT_GT(checked, 0) << "the fuzz never observed a populated snapshot";
}

// --- Dump format ------------------------------------------------------------

TEST(FlightDump, DumpToPathEmitsParseableV1Format) {
  FlightRecorder rec(small_config(2, 8));
  rec.set_name_table("net 3 n3\ninst 12 g12\n");
  rec.lane(0).set_source(3);
  rec.lane(0).set_gate(12, 2);
  rec.lane(0).count_trial();
  rec.lane(0).record(FlightEventKind::kTrial, 1, 12, 2);
  rec.lane(1).record(FlightEventKind::kCacheHit, 4, 12, 3);
  rec.note_stall();

  const std::string path = temp_path("sasta_flight_unit.dump");
  ASSERT_TRUE(rec.dump_to_path(path.c_str()));
  const std::string text = slurp(path);
  std::filesystem::remove(path);

  EXPECT_EQ(text.rfind("sasta-flightdump-v1\n", 0), 0u) << text;
  EXPECT_NE(text.find("\nstalls 1\n"), std::string::npos);
  EXPECT_NE(text.find("\nlanes 2 capacity 8\n"), std::string::npos);
  EXPECT_NE(text.find("net 3 n3\n"), std::string::npos);
  EXPECT_NE(text.find("inst 12 g12\n"), std::string::npos);
  EXPECT_NE(text.find("lane 0 activity source 3 gate 12 depth 2 trials 1 "
                      "paths 0 sources 0 since_progress 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lane 1 activity source - gate - depth 0"),
            std::string::npos);
  EXPECT_NE(
      text.find("lane 0 event 0 ts "), std::string::npos);
  EXPECT_NE(text.find(" kind trial arg 1 a 12 b 2\n"), std::string::npos);
  EXPECT_NE(text.find(" kind cache_hit arg 4 a 12 b 3\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 4), "end\n");
}

TEST(FlightDump, KindNamesCoverAllKindsAndFallBackOnGarbage) {
  EXPECT_STREQ(flight_event_kind_name(
                   static_cast<std::uint8_t>(FlightEventKind::kTrial)),
               "trial");
  EXPECT_STREQ(flight_event_kind_name(
                   static_cast<std::uint8_t>(FlightEventKind::kPackedSweep)),
               "packed_sweep");
  EXPECT_STREQ(flight_event_kind_name(0xEE), "?");
}

// --- Stall report + watchdog ------------------------------------------------

TEST(StallReport, NamesStuckWorkersAndMarksIdleOnes) {
  FlightRecorder rec(small_config(2, 8));
  rec.lane(0).set_source(3);
  rec.lane(0).set_gate(7, 5);
  rec.lane(0).count_trial();

  const std::string report = format_stall_report(
      rec, 2.0, [](std::uint32_t n) { return "N" + std::to_string(n); },
      [](std::uint32_t i) { return "G" + std::to_string(i); });
  EXPECT_NE(report.find("no progress for 2.0 s"), std::string::npos);
  EXPECT_NE(report.find("w0: source N3, gate G7, depth 5, 1 trials"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("w1: idle"), std::string::npos);

  // Null resolvers print raw ids.
  const std::string raw = format_stall_report(rec, 1.0, nullptr, nullptr);
  EXPECT_NE(raw.find("w0: source 3, gate 7"), std::string::npos) << raw;
}

// Deterministic window pacing: manual_tick hands the watchdog exactly one
// evaluation window per tick_for_testing() call, so these tests never race
// a wall-clock timer (the former sleep-loop versions flaked on loaded CI
// hosts where 100 x 10 ms could elapse without the 30 ms timer firing).
TEST(StallWatchdog, FiresOnNoProgressWindowAndWritesDump) {
  FlightRecorder rec(small_config(1, 8));
  rec.lane(0).set_source(5);  // busy forever, no progress

  std::vector<std::string> reports;  // manual ticks serialize the callback
  StallWatchdog::Hooks hooks;
  hooks.manual_tick = true;
  hooks.on_stall = [&](const std::string& r) { reports.push_back(r); };
  hooks.dump_path = temp_path("sasta_watchdog_unit.dump");
  {
    // Manual ticks never wait on the wall clock, so a human-scale interval
    // costs nothing and keeps the report's stall accounting readable.
    StallWatchdog dog(rec, 1.0, hooks);
    dog.tick_for_testing();  // window 1 establishes the baseline
    EXPECT_TRUE(reports.empty());
    dog.tick_for_testing();  // window 2: busy lane, unchanged signature
    ASSERT_EQ(reports.size(), 1u) << "no-progress window must fire";
    dog.tick_for_testing();  // still stuck: the stall persists and re-fires
    ASSERT_EQ(reports.size(), 2u);
  }
  EXPECT_NE(reports[0].find("no progress for 1.0 s"), std::string::npos)
      << reports[0];
  EXPECT_NE(reports[1].find("no progress for 2.0 s"), std::string::npos)
      << reports[1];
  EXPECT_NE(reports[0].find("w0: source 5"), std::string::npos);
  EXPECT_EQ(rec.stalls(), 2);
  const std::string dump = slurp(hooks.dump_path);
  std::filesystem::remove(hooks.dump_path);
  EXPECT_NE(dump.find("sasta-flightdump-v1\n"), std::string::npos);
  EXPECT_NE(dump.find("stalls "), std::string::npos);
  EXPECT_NE(dump.find("end\n"), std::string::npos);
}

TEST(StallWatchdog, StaysQuietWhenIdleOrProgressing) {
  FlightRecorder rec(small_config(2, 8));
  std::atomic<int> fires{0};
  StallWatchdog::Hooks hooks;
  hooks.manual_tick = true;
  hooks.on_stall = [&](const std::string&) { ++fires; };

  {
    // All lanes idle: never a stall, no matter how many windows close.
    StallWatchdog dog(rec, 0.02, hooks);
    for (int i = 0; i < 5; ++i) dog.tick_for_testing();
  }
  EXPECT_EQ(fires.load(), 0);

  {
    // Busy but progressing: each window sees a new progress signature.
    rec.lane(0).set_source(1);
    StallWatchdog dog(rec, 0.02, hooks);
    dog.tick_for_testing();  // baseline
    for (int i = 0; i < 10; ++i) {
      rec.lane(0).note_path_recorded();
      dog.tick_for_testing();
    }
  }
  EXPECT_EQ(fires.load(), 0);
  EXPECT_EQ(rec.stalls(), 0);
}

// A destructor racing a pending tick must not deadlock: stop wins.
TEST(StallWatchdog, DestructionWithNoTicksIsClean) {
  FlightRecorder rec(small_config(1, 8));
  StallWatchdog::Hooks hooks;
  hooks.manual_tick = true;
  StallWatchdog dog(rec, 0.02, hooks);
  // No ticks at all: the thread is parked on the manual-tick wait and must
  // be released by ~StallWatchdog.
}

// --- Signal plumbing --------------------------------------------------------

TEST(FlightSignals, Sigusr1WritesAnOnDemandDumpAndExecutionContinues) {
  FlightRecorder rec(small_config(1, 8));
  rec.set_name_table("net 0 pi0\n");
  rec.lane(0).record(FlightEventKind::kSourceClaim, 0, 0, 0);

  const std::string path = temp_path("sasta_usr1_unit.dump");
  install_flight_signal_handlers(&rec, path);
  ASSERT_EQ(raise(SIGUSR1), 0);

  const std::string text = slurp(path);
  std::filesystem::remove(path);
  EXPECT_EQ(text.rfind("# signal usr1 ", 0), 0u) << text;
  EXPECT_NE(text.find("sasta-flightdump-v1\n"), std::string::npos);
  EXPECT_NE(text.find("net 0 pi0\n"), std::string::npos);
  EXPECT_NE(text.find("kind source_claim"), std::string::npos);
  EXPECT_NE(text.find("end\n"), std::string::npos);
}

TEST(FlightSignals, FirstSigintSetsTheCooperativeFlag) {
  clear_interrupt_for_testing();
  install_interrupt_handler();
  EXPECT_FALSE(interrupt_requested());
  ASSERT_EQ(raise(SIGINT), 0);  // first delivery: flag only, no termination
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt_for_testing();
  EXPECT_FALSE(interrupt_requested());
}

TEST(FlightSignals, RequestInterruptIsTheProgrammaticEquivalent) {
  clear_interrupt_for_testing();
  EXPECT_FALSE(interrupt_requested());
  request_interrupt();
  EXPECT_TRUE(interrupt_requested());
  clear_interrupt_for_testing();
}

}  // namespace
}  // namespace sasta::util
