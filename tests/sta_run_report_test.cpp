// --report-json / --profile integration tests: the structured run report
// validates against its documented schema ("sasta-run-report-v1" in
// docs/METRICS.md), its attribution tables reconcile exactly with the
// aggregate PathFinderStats, and rendering is deterministic byte-for-byte
// for fixed inputs.  Sections backed by absent sinks must render as empty
// objects/arrays so the key set is schema-stable.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "netlist/iscas_gen.h"
#include "netlist/techmap.h"
#include "sta/pathfinder.h"
#include "sta/run_report.h"
#include "test_charlib.h"
#include "test_json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace sasta::sta {
namespace {

netlist::Netlist generated_circuit(std::uint64_t seed) {
  netlist::GeneratorProfile p;
  p.name = "rr" + std::to_string(seed);
  p.num_inputs = 12;
  p.num_outputs = 6;
  p.num_gates = 60;
  p.depth = 7;
  p.seed = seed;
  return netlist::tech_map(netlist::generate_iscas_like(p),
                           testing::test_library())
      .netlist;
}

struct FullRun {
  PathFinderStats stats;
  SearchAttribution attribution;
  util::MetricsSnapshot metrics;
  std::vector<util::TraceEvent> trace_events;
};

FullRun run_with_all_sinks(const netlist::Netlist& nl, JustifyTier tier,
                           int threads) {
  util::MetricsRegistry registry;
  util::TraceCollector trace;
  FullRun out;
  PathFinderOptions opt;
  opt.num_threads = threads;
  opt.justify_cache = JustifyCacheMode::kShared;
  opt.justify_tier = tier;
  opt.metrics = &registry;
  opt.trace = &trace;
  opt.attribution = &out.attribution;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  out.stats = finder.run([](const TruePath&) {});
  out.metrics = registry.snapshot();
  out.trace_events = trace.events();
  return out;
}

std::string render(const netlist::Netlist& nl, const PathFinderOptions* opt,
                   const FullRun& run) {
  util::TraceCollector trace;
  for (const util::TraceEvent& e : run.trace_events) {
    e.ph == 'X' ? trace.add_complete_event(e.name, e.tid, e.ts_us, e.dur_us)
                : trace.add_instant_event(e.name, e.tid, e.ts_us);
  }
  RunReportInputs in;
  in.circuit = nl.name();
  in.netlist = &nl;
  in.options = opt;
  in.stats = &run.stats;
  in.metrics = &run.metrics;
  in.attribution = &run.attribution;
  in.trace = &trace;
  std::ostringstream os;
  write_run_report(in, os);
  return os.str();
}

// Every key the schema documents must be present even when all sinks ran,
// and the whole artifact must be syntactically valid JSON.
TEST(RunReport, ValidatesAgainstDocumentedSchema) {
  const netlist::Netlist nl = generated_circuit(7);
  PathFinderOptions opt;
  opt.justify_cache = JustifyCacheMode::kShared;
  const FullRun run = run_with_all_sinks(nl, JustifyTier::kBoth, 4);
  const std::string json = render(nl, &opt, run);

  EXPECT_TRUE(testing::is_valid_json(json)) << json;
  for (const char* key :
       {"\"schema\": \"sasta-run-report-v1\"", "\"circuit\"", "\"options\"",
        "\"totals\"", "\"cache\"", "\"controller\"", "\"attribution\"",
        "\"sources\"", "\"hot_gates\"", "\"workers\"", "\"metrics\"",
        "\"refutes_per_escalation\"", "\"shard_occupancy\"",
        "\"escalations_vetoed\"", "\"trial_lanes\"", "\"packed_sweeps\"",
        "\"lanes_refuted\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // A scalar run echoes its lane width and zero packed totals.
  EXPECT_NE(json.find("\"trial_lanes\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"packed_sweeps\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lanes_refuted\": 0"), std::string::npos) << json;
}

// A packed run surfaces its lane width and nonzero sweep totals in the
// report, so a consumer can tell from the artifact alone whether (and how
// wide) bit-parallel trial evaluation ran.
TEST(RunReport, PackedRunEchoesLanesAndSweepTotals) {
  const netlist::Netlist nl = generated_circuit(7);
  util::MetricsRegistry registry;
  PathFinderOptions opt;
  opt.justify_cache = JustifyCacheMode::kShared;
  opt.trial_lanes = 16;
  opt.metrics = &registry;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  const PathFinderStats stats = finder.run([](const TruePath&) {});
  const util::MetricsSnapshot metrics = registry.snapshot();

  RunReportInputs in;
  in.circuit = nl.name();
  in.netlist = &nl;
  in.options = &opt;
  in.stats = &stats;
  in.metrics = &metrics;
  std::ostringstream os;
  write_run_report(in, os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::is_valid_json(json)) << json;
  EXPECT_NE(json.find("\"trial_lanes\": 16"), std::string::npos) << json;
  EXPECT_GT(stats.packed_sweeps, 0);
  EXPECT_GT(stats.lanes_refuted, 0);
  EXPECT_NE(json.find("\"packed_sweeps\": " +
                      std::to_string(stats.packed_sweeps)),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"lanes_refuted\": " +
                      std::to_string(stats.lanes_refuted)),
            std::string::npos)
      << json;
}

// Null sections must not change the key set: a report with no inputs at
// all is still valid JSON carrying every top-level key.
TEST(RunReport, EmptyInputsRenderSchemaStableSkeleton) {
  RunReportInputs in;
  in.circuit = "none";
  std::ostringstream os;
  write_run_report(in, os);
  const std::string json = os.str();
  EXPECT_TRUE(testing::is_valid_json(json)) << json;
  for (const char* key :
       {"\"schema\"", "\"options\"", "\"totals\"", "\"cache\"",
        "\"controller\"", "\"attribution\"", "\"workers\"", "\"metrics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

// The attribution tables are exact decompositions of the aggregate stats,
// not estimates: per-source rows and per-gate tallies must sum back to the
// PathFinderStats totals they attribute.
TEST(RunReport, AttributionReconcilesWithAggregateStats) {
  const netlist::Netlist nl = generated_circuit(11);
  for (const int threads : {1, 4}) {
    const FullRun run = run_with_all_sinks(nl, JustifyTier::kBoth, threads);
    long src_trials = 0, src_backtracks = 0, src_paths = 0, src_limited = 0;
    for (const SearchAttribution::SourceCost& r : run.attribution.sources) {
      if (r.source == netlist::kNoId) continue;
      src_trials += r.vector_trials;
      src_backtracks += r.backtracks;
      src_paths += r.paths_recorded;
      src_limited += r.justify_limited;
    }
    EXPECT_EQ(src_trials, run.stats.vector_trials) << threads << " threads";
    EXPECT_EQ(src_backtracks, run.stats.backtracks);
    EXPECT_EQ(src_paths, run.stats.paths_recorded);
    EXPECT_EQ(src_limited, run.stats.justify_limited);

    long gate_trials = 0, gate_prunes = 0, gate_escalations = 0;
    for (const SearchAttribution::GateCost& g : run.attribution.gates) {
      gate_trials += g.vector_trials;
      gate_prunes += g.cache_prunes;
      gate_escalations += g.solver_escalations;
    }
    EXPECT_EQ(gate_trials, run.stats.vector_trials);
    EXPECT_EQ(gate_prunes, run.stats.cache_prunes);
    EXPECT_EQ(gate_escalations, run.stats.solver_escalations);

    // The shared cache's occupancy never exceeds its inserts.
    long occupied = 0;
    for (const std::size_t n : run.attribution.cache_shards) {
      occupied += static_cast<long>(n);
    }
    EXPECT_GT(occupied, 0);
    EXPECT_LE(occupied, run.stats.cache_inserts);
  }
}

// Rendering is a pure function of its inputs: same snapshot in, same bytes
// out — the report diffs cleanly across runs that did identical work.
TEST(RunReport, RenderingIsDeterministic) {
  const netlist::Netlist nl = generated_circuit(7);
  PathFinderOptions opt;
  const FullRun run = run_with_all_sinks(nl, JustifyTier::kBoth, 4);
  EXPECT_EQ(render(nl, &opt, run), render(nl, &opt, run));
}

// The adaptive controller surfaces in both artifacts: the report's
// controller section flips active and carries the snapshot; the profile
// summary names its state.
TEST(RunReport, ControllerSectionReflectsAdaptiveTier) {
  const netlist::Netlist nl = generated_circuit(11);
  const FullRun both = run_with_all_sinks(nl, JustifyTier::kBoth, 1);
  const FullRun adaptive = run_with_all_sinks(nl, JustifyTier::kAdaptive, 1);
  EXPECT_FALSE(both.attribution.controller_active);
  EXPECT_TRUE(adaptive.attribution.controller_active);
  // The controller's own ledger agrees with the stats counters.
  EXPECT_EQ(adaptive.attribution.controller.escalations,
            adaptive.stats.solver_escalations);
  EXPECT_EQ(adaptive.attribution.controller.refutes,
            adaptive.stats.escalation_refutes);
  EXPECT_EQ(adaptive.attribution.controller.vetoes,
            adaptive.stats.escalations_vetoed);

  const std::string json = render(nl, nullptr, adaptive);
  EXPECT_NE(json.find("\"active\": true"), std::string::npos);
  EXPECT_NE(json.find("\"payoff\""), std::string::npos);

  RunReportInputs in;
  in.circuit = nl.name();
  in.netlist = &nl;
  in.stats = &adaptive.stats;
  in.attribution = &adaptive.attribution;
  const std::string profile = format_profile_summary(in);
  EXPECT_NE(profile.find("controller:"), std::string::npos);
  EXPECT_NE(profile.find("hot gates"), std::string::npos);
}

}  // namespace
}  // namespace sasta::sta
