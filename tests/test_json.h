// Minimal recursive-descent JSON syntax checker for test assertions on the
// emitted metrics / trace files (objects, arrays, strings, numbers, the
// three literals; no semantic model).  CI additionally validates the same
// files with `python3 -m json.tool`; this keeps the check in-process for
// the unit suite.
#pragma once

#include <cctype>
#include <string>

namespace sasta::testing {

class JsonValidator {
 public:
  explicit JsonValidator(std::string text) : text_(std::move(text)) {}

  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  bool parse_value() {
    if (eof()) return false;
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return parse_string();
      case 't':
        return parse_literal("true");
      case 'f':
        return parse_literal("false");
      case 'n':
        return parse_literal("null");
      default:
        return parse_number();
    }
  }

  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // bare control
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_++]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool parse_number() {
    const std::size_t start = pos_;
    consume('-');
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return false;
    if (!consume('0')) {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (consume('.')) {
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!consume('+')) consume('-');
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
        return false;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

inline bool is_valid_json(const std::string& text) {
  return JsonValidator(text).valid();
}

}  // namespace sasta::testing
