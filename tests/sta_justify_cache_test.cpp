// Lock-free justification memo cache: differential/property battery.
//
// The cache's contract is strict result-neutrality — the enumerated path
// set, its order, every delay bit, and the rendered timing report must be
// identical across --justify-cache off / shared / per-worker at every
// thread count — plus a monotone work guarantee (cached runs attempt at
// most as many vector trials as uncached ones).  The battery locks both
// down on randomized ISCAS-style netlists, then unit-tests the lock-free
// table itself (CAS insert races, capacity overflow, epoch invalidation)
// and fuzzes goal-set canonicalization against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netlist/bench_parser.h"
#include "netlist/iscas_gen.h"
#include "netlist/techmap.h"
#include "sta/assignment.h"
#include "sta/implication.h"
#include "sta/justify.h"
#include "sta/justify_cache.h"
#include "sta/pathfinder.h"
#include "sta/report.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"
#include "test_paths.h"
#include "util/rng.h"

namespace sasta::sta {
namespace {

netlist::Netlist generated_circuit(std::uint64_t seed, int pis = 12,
                                   int gates = 60, int depth = 7) {
  netlist::GeneratorProfile p;
  p.name = "jc" + std::to_string(seed);
  p.num_inputs = pis;
  p.num_outputs = 6;
  p.num_gates = gates;
  p.depth = depth;
  p.seed = seed;
  return netlist::tech_map(netlist::generate_iscas_like(p),
                           testing::test_library())
      .netlist;
}

netlist::Netlist c17() {
  return netlist::tech_map(
             netlist::parse_bench_string(netlist::c17_bench_text(), "c17"),
             testing::test_library())
      .netlist;
}

struct EnumRun {
  std::vector<std::string> fingerprints;
  PathFinderStats stats;
};

EnumRun enumerate(const netlist::Netlist& nl, JustifyCacheMode mode,
                  int threads, std::size_t capacity = std::size_t{1} << 16,
                  JustifyTier tier = JustifyTier::kBoth) {
  PathFinderOptions opt;
  opt.num_threads = threads;
  opt.justify_cache = mode;
  opt.justify_cache_capacity = capacity;
  opt.justify_tier = tier;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  EnumRun run;
  std::vector<TruePath> paths;
  run.stats = finder.run([&](const TruePath& p) { paths.push_back(p); });
  run.fingerprints = testing::path_fingerprints(nl, paths);
  return run;
}

// The headline differential property: for several randomized circuits,
// every (cache mode, thread count) combination enumerates byte-identical
// paths in identical order; cached runs never attempt more vector trials
// than the uncached reference; and because verdicts are pure functions of
// the goal set, the trial count is identical across kShared / kPerWorker
// and across thread counts.
TEST(JustifyCacheDifferential, ModesAndThreadsAreResultIdentical) {
  for (const std::uint64_t seed : {3u, 11u, 27u}) {
    const netlist::Netlist nl = generated_circuit(seed);
    const EnumRun base = enumerate(nl, JustifyCacheMode::kOff, 1);
    ASSERT_FALSE(base.fingerprints.empty()) << "seed " << seed;

    long cached_trials = -1;
    for (const JustifyCacheMode mode :
         {JustifyCacheMode::kOff, JustifyCacheMode::kShared,
          JustifyCacheMode::kPerWorker}) {
      for (const int threads : {1, 4, 8}) {
        const EnumRun run = enumerate(nl, mode, threads);
        EXPECT_EQ(run.fingerprints, base.fingerprints)
            << "seed " << seed << " mode " << static_cast<int>(mode)
            << " threads " << threads;
        EXPECT_EQ(run.stats.paths_recorded, base.stats.paths_recorded);
        EXPECT_EQ(run.stats.courses, base.stats.courses);
        if (mode == JustifyCacheMode::kOff) {
          EXPECT_EQ(run.stats.vector_trials, base.stats.vector_trials);
          EXPECT_EQ(run.stats.cache_hits + run.stats.cache_misses, 0);
          EXPECT_EQ(run.stats.cache_prunes, 0);
        } else {
          EXPECT_LE(run.stats.vector_trials, base.stats.vector_trials);
          // Each prune skips one counted trial directly — and possibly the
          // whole subtree the uncached run explored below it (its joint
          // conjunction is infeasible, but the new-goals-only incremental
          // solve can pass), so the uncached count may exceed
          // trials + prunes.
          EXPECT_LE(run.stats.vector_trials + run.stats.cache_prunes,
                    base.stats.vector_trials);
          if (cached_trials < 0) cached_trials = run.stats.vector_trials;
          EXPECT_EQ(run.stats.vector_trials, cached_trials)
              << "verdict purity makes prune decisions mode- and "
               "thread-count-independent";
        }
      }
    }
  }
}

// Full-pipeline differential: the StaTool timing report — the actual user
// artifact, slacks included — is byte-identical across every cache mode,
// refutation tier, and thread count (the --justify-tier x --justify-cache
// x threads result-neutrality matrix).
TEST(JustifyCacheDifferential, TimingReportBytesIdenticalAcrossModes) {
  const netlist::Netlist nl = generated_circuit(7, 12, 70);
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");

  auto render = [&](JustifyCacheMode mode, JustifyTier tier, int threads) {
    StaToolOptions opt;
    opt.keep_worst = 10;
    opt.finder.num_threads = threads;
    opt.finder.justify_cache = mode;
    opt.finder.justify_tier = tier;
    const StaResult res = StaTool(nl, cl, tech, opt).run();
    std::ostringstream os;
    for (const auto& tp : res.paths) {
      os << testing::timed_fingerprint(nl, tp) << "\n";
    }
    const TimingReport rep = build_timing_report(nl, res, 0.9e-9);
    os << format_timing_report(nl, rep);
    for (const auto& ep : rep.endpoints) {
      os << testing::hex_double(ep.slack) << "\n";
    }
    return os.str();
  };

  const std::string base =
      render(JustifyCacheMode::kOff, JustifyTier::kBoth, 1);
  ASSERT_FALSE(base.empty());
  for (const JustifyCacheMode mode :
       {JustifyCacheMode::kShared, JustifyCacheMode::kPerWorker}) {
    for (const JustifyTier tier :
         {JustifyTier::kImplication, JustifyTier::kSolver, JustifyTier::kBoth,
          JustifyTier::kAdaptive}) {
      for (const int threads : {1, 4, 8}) {
        EXPECT_EQ(render(mode, tier, threads), base)
            << "mode " << static_cast<int>(mode) << " tier "
            << static_cast<int>(tier) << " threads " << threads;
      }
    }
  }
  // Adaptive with the cache off degenerates to the plain pipeline (there is
  // no miss path for the controller to veto) and must also render the same
  // bytes.
  for (const int threads : {1, 4, 8}) {
    EXPECT_EQ(render(JustifyCacheMode::kOff, JustifyTier::kAdaptive, threads),
              base)
        << "cache off, adaptive, threads " << threads;
  }
}

// The N-worst pruned search with the shared cache still returns exactly
// the exhaustive top-N set (both optimizations prune independently; both
// are sound).
TEST(JustifyCacheDifferential, NWorstTopSetUnchanged) {
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");
  constexpr long kN = 8;
  for (const netlist::Netlist& nl : {c17(), generated_circuit(13, 14, 70)}) {
    auto top_set = [&](JustifyCacheMode mode, bool prune) {
      StaToolOptions opt;
      opt.keep_worst = kN;
      opt.finder.num_threads = 8;
      opt.finder.justify_cache = mode;
      if (prune) opt.finder.n_worst = kN;
      const StaResult res = StaTool(nl, cl, tech, opt).run();
      std::set<std::string> keys;
      for (const auto& tp : res.paths) {
        keys.insert(tp.path.full_key(nl) + "|" +
                    testing::hex_double(tp.delay));
      }
      return keys;
    };
    const auto want = top_set(JustifyCacheMode::kOff, false);
    ASSERT_FALSE(want.empty());
    EXPECT_EQ(top_set(JustifyCacheMode::kShared, true), want) << nl.name();
    EXPECT_EQ(top_set(JustifyCacheMode::kShared, false), want) << nl.name();
  }
}

// A tiny table must also be result-neutral: overflow may only drop
// verdicts (fewer prunes), never corrupt results.
TEST(JustifyCacheDifferential, TinyCapacityOnlyCostsPrunes) {
  const netlist::Netlist nl = generated_circuit(11);
  const EnumRun base = enumerate(nl, JustifyCacheMode::kOff, 1);
  const EnumRun big = enumerate(nl, JustifyCacheMode::kShared, 4);
  const EnumRun tiny = enumerate(nl, JustifyCacheMode::kShared, 4, 64);
  EXPECT_EQ(tiny.fingerprints, base.fingerprints);
  EXPECT_EQ(big.fingerprints, base.fingerprints);
  EXPECT_LE(tiny.stats.vector_trials, base.stats.vector_trials);
  EXPECT_GE(tiny.stats.vector_trials, big.stats.vector_trials)
      << "a smaller table can only lose prunes, never gain them";
  EXPECT_GT(tiny.stats.cache_full_drops, 0)
      << "64 slots should overflow on this circuit";
}

// --- Tiered refutation ------------------------------------------------------

// The tier ablation knob must be invisible in the results: every tier
// enumerates byte-identical paths, and within one tier the trial count is
// identical across cache modes and thread counts (verdict purity).  The
// tiers differ only in which counter absorbs each miss: the implication
// tier never runs the solver, the solver tier never refutes by closure.
TEST(JustifyTierDifferential, TiersAreResultIdentical) {
  for (const std::uint64_t seed : {3u, 27u}) {
    const netlist::Netlist nl = generated_circuit(seed);
    const EnumRun base = enumerate(nl, JustifyCacheMode::kOff, 1);
    ASSERT_FALSE(base.fingerprints.empty()) << "seed " << seed;

    for (const JustifyTier tier :
         {JustifyTier::kImplication, JustifyTier::kSolver,
          JustifyTier::kBoth}) {
      long tier_trials = -1;
      for (const JustifyCacheMode mode :
           {JustifyCacheMode::kShared, JustifyCacheMode::kPerWorker}) {
        for (const int threads : {1, 8}) {
          const EnumRun run = enumerate(nl, mode, threads,
                                        std::size_t{1} << 16, tier);
          EXPECT_EQ(run.fingerprints, base.fingerprints)
              << "seed " << seed << " tier " << static_cast<int>(tier)
              << " mode " << static_cast<int>(mode) << " threads "
              << threads;
          EXPECT_LE(run.stats.vector_trials + run.stats.cache_prunes,
                    base.stats.vector_trials);
          if (tier_trials < 0) tier_trials = run.stats.vector_trials;
          EXPECT_EQ(run.stats.vector_trials, tier_trials)
              << "per-tier verdict purity keeps prune decisions mode- and "
                 "thread-count-independent";
          if (tier == JustifyTier::kImplication) {
            EXPECT_EQ(run.stats.solver_escalations, 0)
                << "closure-only tier must never run the solver";
          }
          if (tier == JustifyTier::kSolver) {
            EXPECT_EQ(run.stats.implication_refutes, 0)
                << "solver-only tier must never refute by closure";
          }
          EXPECT_EQ(run.stats.cache_inserts + run.stats.cache_insert_races +
                        run.stats.cache_full_drops,
                    run.stats.cache_misses)
              << "every miss resolves to exactly one insert outcome in "
                 "every tier";
        }
      }
    }
  }
}

// The soundness core of the implication-first tier, checked differentially
// on seeded random netlists and goal sets: whenever the zero-backtracking
// implication closure refutes a conjunction, the exact (budget-free)
// backtracking solver refutes it too.  Closure conflicts are complete
// refutations — the closure derives only logical consequences — so the
// fast tier may never disagree with the ground truth.
TEST(JustifyTierDifferential, ImplicationConflictImpliesSolverConflict) {
  util::Rng rng(0x71E2);
  int closure_refutes = 0;
  for (const std::uint64_t seed : {2u, 5u, 8u, 21u}) {
    const netlist::Netlist nl = generated_circuit(seed, 10, 40, 6);
    for (int trial = 0; trial < 60; ++trial) {
      std::vector<Goal> goals;
      const int k = 1 + static_cast<int>(rng.next_below(5));
      for (int g = 0; g < k; ++g) {
        goals.push_back({static_cast<netlist::NetId>(
                             rng.next_below(nl.num_nets())),
                         rng.next_bool()});
      }

      AssignmentState closure_state(nl.num_nets());
      ImplicationEngine closure_engine(nl, closure_state);
      const unsigned closure_alive =
          closure_engine.assign_steady_goals(goals, kScenarioBoth);
      if (closure_alive != kScenarioNone) continue;  // not refuted
      ++closure_refutes;

      AssignmentState solver_state(nl.num_nets());
      ImplicationEngine solver_engine(nl, solver_state);
      Justifier solver(nl, solver_state, solver_engine);
      const Justifier::Result exact =
          solver.justify_all(goals, kScenarioBoth, /*backtrack_budget=*/-1);
      EXPECT_EQ(exact.alive, kScenarioNone)
          << "seed " << seed << " trial " << trial
          << ": closure refuted a conjunction the exact solver satisfies";
      EXPECT_FALSE(exact.backtrack_limited);
    }
  }
  EXPECT_GT(closure_refutes, 20)
      << "the fuzz should actually exercise closure refutations";
}

// Conflict-subset learning: misses are resolved per support-disjoint
// component and each component verdict is cached under its own key, so a
// refuted component re-refutes every future superset via a probe.  On a
// circuit whose prefixes recombine refuted components, that must surface
// as subset_hits; tiering must also strictly reduce solver escalations
// relative to the solver-only pipeline.
TEST(JustifyTierDifferential, SubsetLearningAndClosureAbsorbEscalations) {
  // Same profile shape as the bench's memo16 circuit: deep enough that
  // accumulated prefix conjunctions split into multiple components.
  const netlist::Netlist nl = generated_circuit(42, 16, 80, 8);
  const EnumRun both = enumerate(nl, JustifyCacheMode::kShared, 4,
                                 std::size_t{1} << 16, JustifyTier::kBoth);
  const EnumRun solver_only =
      enumerate(nl, JustifyCacheMode::kShared, 4, std::size_t{1} << 16,
                JustifyTier::kSolver);
  const EnumRun closure_only =
      enumerate(nl, JustifyCacheMode::kShared, 4, std::size_t{1} << 16,
                JustifyTier::kImplication);

  EXPECT_GT(both.stats.subset_hits, 0)
      << "multi-component misses should re-refute via cached components";
  EXPECT_GT(both.stats.implication_refutes, 0);
  EXPECT_LT(both.stats.solver_escalations, solver_only.stats.solver_escalations)
      << "the closure tier must absorb some escalations";
  // The closure-only tier negatively memoizes what it cannot refute, and
  // those entries answer repeat misses (negative hits).
  EXPECT_GT(closure_only.stats.negative_hits, 0);
  // Conflicts found by closure are a subset of the solver's, so the
  // closure-only tier can only lose prunes relative to the full pipeline.
  EXPECT_LE(closure_only.stats.cache_prunes, both.stats.cache_prunes);
  EXPECT_EQ(closure_only.fingerprints, both.fingerprints);
  EXPECT_EQ(solver_only.fingerprints, both.fingerprints);
}

// --- Adaptive escalation controller ----------------------------------------

EnumRun enumerate_adaptive(const netlist::Netlist& nl, int threads,
                           double payoff) {
  PathFinderOptions opt;
  opt.num_threads = threads;
  opt.justify_cache = JustifyCacheMode::kShared;
  opt.justify_tier = JustifyTier::kAdaptive;
  opt.escalation_payoff = payoff;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  EnumRun run;
  std::vector<TruePath> paths;
  run.stats = finder.run([&](const TruePath& p) { paths.push_back(p); });
  run.fingerprints = testing::path_fingerprints(nl, paths);
  return run;
}

// The adaptive tier's one hard guarantee: whatever the controller decides,
// the enumerated result is byte-identical to every other tier — a veto only
// degrades a refutation opportunity into an inconclusive memo, exactly what
// the implication tier records for every miss it cannot close.
TEST(AdaptiveEscalation, ResultsIdenticalAtEveryPayoffAndThreadCount) {
  const netlist::Netlist nl = generated_circuit(42, 16, 80, 8);
  const EnumRun base = enumerate(nl, JustifyCacheMode::kOff, 1);
  ASSERT_FALSE(base.fingerprints.empty());
  for (const double payoff : {0.0, 0.5, 1e9}) {
    for (const int threads : {1, 4, 8}) {
      const EnumRun run = enumerate_adaptive(nl, threads, payoff);
      EXPECT_EQ(run.fingerprints, base.fingerprints)
          << "payoff " << payoff << " threads " << threads;
      EXPECT_EQ(run.stats.paths_recorded, base.stats.paths_recorded);
    }
  }
}

// payoff = 0 can never disable escalation (the window ratio is >= 0 and the
// exact threshold stays enabled), so single-threaded adaptive must degrade
// to the kBoth pipeline *exactly* — same trials, same escalations, same
// refutes, zero vetoes.  Cost counters are only deterministic at one
// thread; at higher counts controller state depends on arrival order.
TEST(AdaptiveEscalation, ZeroThresholdIsBothAtOneThread) {
  const netlist::Netlist nl = generated_circuit(42, 16, 80, 8);
  const EnumRun both = enumerate(nl, JustifyCacheMode::kShared, 1,
                                 std::size_t{1} << 16, JustifyTier::kBoth);
  const EnumRun adaptive = enumerate_adaptive(nl, 1, 0.0);
  EXPECT_EQ(adaptive.fingerprints, both.fingerprints);
  EXPECT_EQ(adaptive.stats.vector_trials, both.stats.vector_trials);
  EXPECT_EQ(adaptive.stats.solver_escalations, both.stats.solver_escalations);
  EXPECT_EQ(adaptive.stats.escalation_refutes, both.stats.escalation_refutes);
  EXPECT_EQ(adaptive.stats.escalations_vetoed, 0);
}

// An unreachable threshold makes the controller disable escalation after
// the first full window: vetoes appear and solver escalations drop well
// below kBoth's, while the result stays identical (checked above).
TEST(AdaptiveEscalation, UnreachableThresholdShedsEscalations) {
  const netlist::Netlist nl = generated_circuit(42, 16, 80, 8);
  const EnumRun both = enumerate(nl, JustifyCacheMode::kShared, 1,
                                 std::size_t{1} << 16, JustifyTier::kBoth);
  const EnumRun adaptive = enumerate_adaptive(nl, 1, 1e9);
  ASSERT_GT(both.stats.solver_escalations, 0)
      << "circuit too easy to exercise the controller";
  EXPECT_GT(adaptive.stats.escalations_vetoed, 0);
  EXPECT_LT(adaptive.stats.solver_escalations,
            both.stats.solver_escalations);
  // Probing keeps a trickle of escalations alive so the estimate can
  // recover; the controller never fully blinds itself.
  EXPECT_GT(adaptive.stats.solver_escalations, 0);
}

// --- Lock-free table unit tests -------------------------------------------

GoalSetKey key_of(std::uint32_t a, bool va, std::uint32_t b, bool vb) {
  const Goal goals[] = {{static_cast<netlist::NetId>(a), va},
                        {static_cast<netlist::NetId>(b), vb}};
  return canonicalize_goals(goals);
}

TEST(JustifyCacheTable, InsertThenProbeRoundTripsEveryVerdict) {
  JustifyCache cache;
  const JustifyVerdict verdicts[] = {JustifyVerdict::kJustifiable,
                                     JustifyVerdict::kConflict,
                                     JustifyVerdict::kBudgetLimited,
                                     JustifyVerdict::kInconclusive};
  for (std::uint32_t i = 0; i < 4; ++i) {
    const GoalSetKey key = key_of(2 * i, false, 2 * i + 1, true);
    EXPECT_EQ(cache.probe(key), JustifyVerdict::kUnknown);
    EXPECT_EQ(cache.insert(key, verdicts[i]),
              JustifyCache::InsertOutcome::kInserted);
    EXPECT_EQ(cache.probe(key), verdicts[i]);
  }
  // Re-inserting an existing key reports the race, not a second insert.
  EXPECT_EQ(cache.insert(key_of(0, false, 1, true),
                         JustifyVerdict::kJustifiable),
            JustifyCache::InsertOutcome::kRaced);
}

// N threads hammer the same key set concurrently: for every key exactly
// one thread wins the CAS claim, everyone else observes kRaced, and every
// subsequent probe returns the (unique, key-derived) verdict — never a
// verdict belonging to a different key.
TEST(JustifyCacheTable, ConcurrentInsertRacesResolveToOneWinner) {
  constexpr int kThreads = 8;
  constexpr std::uint32_t kKeys = 512;
  JustifyCache::Config cfg;
  cfg.capacity = 4096;
  JustifyCache cache(cfg);

  auto verdict_for = [](std::uint32_t i) {
    switch (i % 3) {
      case 0: return JustifyVerdict::kJustifiable;
      case 1: return JustifyVerdict::kConflict;
      default: return JustifyVerdict::kBudgetLimited;
    }
  };

  std::vector<std::vector<int>> inserted(kThreads,
                                         std::vector<int>(kKeys, 0));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kKeys; ++i) {
        const GoalSetKey key = key_of(2 * i, false, 2 * i + 1, i % 2 == 0);
        const auto out = cache.insert(key, verdict_for(i));
        if (out == JustifyCache::InsertOutcome::kInserted) {
          inserted[t][i] = 1;
        }
        // A probe racing other inserts may miss (pending publishes) but
        // must never return a foreign verdict.
        const JustifyVerdict v = cache.probe(key);
        EXPECT_TRUE(v == JustifyVerdict::kUnknown || v == verdict_for(i));
      }
    });
  }
  for (std::thread& th : threads) th.join();

  int full_drops = 0;
  for (std::uint32_t i = 0; i < kKeys; ++i) {
    int winners = 0;
    for (int t = 0; t < kThreads; ++t) winners += inserted[t][i];
    const JustifyVerdict v = cache.probe(
        key_of(2 * i, false, 2 * i + 1, i % 2 == 0));
    if (v == JustifyVerdict::kUnknown) {
      // Dropped on a full probe window — legal, but then nobody won.
      EXPECT_EQ(winners, 0) << "key " << i;
      ++full_drops;
    } else {
      EXPECT_EQ(winners, 1) << "key " << i;
      EXPECT_EQ(v, verdict_for(i)) << "key " << i;
    }
  }
  // With 4096 slots for 512 keys, overflow should be the rare exception.
  EXPECT_LT(full_drops, 32);
}

// Overflow behavior: a probe window that is full fails the insert with
// kFull (and the verdict is simply dropped — probes return kUnknown);
// nothing blocks and resident entries are untouched.
TEST(JustifyCacheTable, CapacityOverflowReturnsFullNeverBlocks) {
  JustifyCache::Config cfg;
  cfg.capacity = 16;
  cfg.shards = 1;
  cfg.max_probe = 16;
  JustifyCache cache(cfg);
  ASSERT_EQ(cache.capacity(), 16u);
  ASSERT_EQ(cache.shard_count(), 1u);

  std::vector<GoalSetKey> stored;
  int full = 0;
  for (std::uint32_t i = 0; i < 256; ++i) {
    const GoalSetKey key = key_of(2 * i, true, 2 * i + 1, false);
    const auto out = cache.insert(key, JustifyVerdict::kConflict);
    if (out == JustifyCache::InsertOutcome::kInserted) {
      stored.push_back(key);
    } else {
      EXPECT_EQ(out, JustifyCache::InsertOutcome::kFull);
      ++full;
      EXPECT_EQ(cache.probe(key), JustifyVerdict::kUnknown);
    }
  }
  EXPECT_EQ(stored.size(), 16u) << "every slot should end up occupied";
  EXPECT_EQ(full, 256 - 16);
  for (const GoalSetKey& key : stored) {
    EXPECT_EQ(cache.probe(key), JustifyVerdict::kConflict);
  }
}

TEST(JustifyCacheTable, ClearInvalidatesByEpochBump) {
  JustifyCache cache;
  const GoalSetKey key = key_of(4, true, 9, false);
  ASSERT_EQ(cache.insert(key, JustifyVerdict::kConflict),
            JustifyCache::InsertOutcome::kInserted);
  ASSERT_EQ(cache.probe(key), JustifyVerdict::kConflict);

  const std::uint32_t before = cache.epoch();
  cache.clear();
  EXPECT_NE(cache.epoch(), before);
  EXPECT_EQ(cache.probe(key), JustifyVerdict::kUnknown);

  // Stale slots are reclaimed: the same key inserts cleanly again.
  EXPECT_EQ(cache.insert(key, JustifyVerdict::kJustifiable),
            JustifyCache::InsertOutcome::kInserted);
  EXPECT_EQ(cache.probe(key), JustifyVerdict::kJustifiable);

  // The epoch wraps 1..0xFFFF and must never land on 0 (the "never used"
  // tag sentinel).
  for (int i = 0; i < 0x10000 + 10; ++i) cache.clear();
  EXPECT_NE(cache.epoch(), 0u);
  EXPECT_LE(cache.epoch(), 0xFFFFu);
}

// Negative memos (kBudgetLimited from a budget abort, kInconclusive from
// the closure-only tier) are cached verdicts like any other: probes hit
// them until an epoch bump, after which the conjunction is re-evaluated —
// a stale "could not refute" must not outlive a clear() any more than a
// stale CONFLICT may.
TEST(JustifyCacheTable, NegativeMemosInvalidatedByEpochBump) {
  JustifyCache cache;
  const GoalSetKey limited = key_of(10, true, 21, false);
  const GoalSetKey inconclusive = key_of(12, false, 33, true);
  ASSERT_EQ(cache.insert(limited, JustifyVerdict::kBudgetLimited),
            JustifyCache::InsertOutcome::kInserted);
  ASSERT_EQ(cache.insert(inconclusive, JustifyVerdict::kInconclusive),
            JustifyCache::InsertOutcome::kInserted);
  ASSERT_EQ(cache.probe(limited), JustifyVerdict::kBudgetLimited);
  ASSERT_EQ(cache.probe(inconclusive), JustifyVerdict::kInconclusive);

  cache.clear();
  EXPECT_EQ(cache.probe(limited), JustifyVerdict::kUnknown);
  EXPECT_EQ(cache.probe(inconclusive), JustifyVerdict::kUnknown);

  // Post-bump the slots are reclaimable and a re-solve can upgrade the
  // verdict (e.g. a larger budget now refutes the conjunction).
  EXPECT_EQ(cache.insert(limited, JustifyVerdict::kConflict),
            JustifyCache::InsertOutcome::kInserted);
  EXPECT_EQ(cache.probe(limited), JustifyVerdict::kConflict);
}

// --- Canonicalization ------------------------------------------------------

TEST(GoalCanonicalization, OrderAndDuplicateInsensitive) {
  const std::vector<Goal> sorted = {{2, false}, {5, true}, {9, false}};
  std::vector<Goal> shuffled = {{9, false}, {2, false}, {5, true}};
  std::vector<Goal> duplicated = {{5, true},  {2, false}, {9, false},
                                  {2, false}, {5, true},  {9, false}};
  const GoalSetKey want = canonicalize_goals(sorted);
  EXPECT_FALSE(want.contradictory);
  EXPECT_FALSE(want.empty);
  EXPECT_EQ(canonicalize_goals(shuffled), want);
  EXPECT_EQ(canonicalize_goals(duplicated), want);
}

TEST(GoalCanonicalization, DetectsContradictionsAndEmpty) {
  const std::vector<Goal> contradictory = {{3, true}, {7, false}, {3, false}};
  EXPECT_TRUE(canonicalize_goals(contradictory).contradictory);
  EXPECT_TRUE(canonicalize_goals({}).empty);
  // Value matters: same net at the same value twice is NOT a contradiction.
  const std::vector<Goal> dup_same = {{3, true}, {3, true}};
  EXPECT_FALSE(canonicalize_goals(dup_same).contradictory);
  // ... and flipping one value of a set changes the key.
  const std::vector<Goal> a = {{2, false}, {5, true}};
  const std::vector<Goal> b = {{2, false}, {5, false}};
  EXPECT_NE(canonicalize_goals(a), canonicalize_goals(b));
}

// Seeded fuzz against a reference model: a goal list's key must depend on
// exactly its *set* of (net, value) pairs — invariant under shuffling and
// duplication, contradictory iff some net appears with both values, and
// distinct for distinct sets (a 128-bit fingerprint collision across a few
// thousand small sets would indicate a broken hash chain, not bad luck).
TEST(GoalCanonicalization, FuzzMatchesReferenceModel) {
  util::Rng rng(0xC0FFEE);
  std::vector<std::pair<std::set<std::pair<std::uint32_t, bool>>,
                        GoalSetKey>> seen;
  int contradictions = 0;
  for (int round = 0; round < 2000; ++round) {
    // Small universes on purpose: collisions in net choice are what
    // exercise dedup and contradiction handling.
    const int n = 1 + static_cast<int>(rng.next_below(6));
    std::vector<Goal> goals;
    std::set<std::pair<std::uint32_t, bool>> model;
    for (int i = 0; i < n; ++i) {
      const auto net = static_cast<netlist::NetId>(rng.next_below(12));
      const bool value = rng.next_bool();
      goals.push_back({net, value});
      model.insert({static_cast<std::uint32_t>(net), value});
    }
    // Duplicate a random subset, then shuffle with the seeded Rng.
    const std::size_t base_size = goals.size();
    for (std::size_t i = 0; i < base_size; ++i) {
      if (rng.next_bool(0.3)) goals.push_back(goals[i]);
    }
    for (std::size_t i = goals.size(); i > 1; --i) {
      std::swap(goals[i - 1], goals[rng.next_below(i)]);
    }

    const GoalSetKey key = canonicalize_goals(goals);
    bool model_contradictory = false;
    for (const auto& [net, value] : model) {
      if (model.count({net, !value}) > 0) model_contradictory = true;
    }
    EXPECT_EQ(key.contradictory, model_contradictory) << "round " << round;
    if (model_contradictory) {
      ++contradictions;
      continue;  // degenerate keys are flagged, not hashed
    }
    // Same set -> same key; different set -> different key.
    for (const auto& [other_model, other_key] : seen) {
      if (other_model == model) {
        EXPECT_EQ(key, other_key) << "round " << round;
      } else {
        EXPECT_NE(key, other_key) << "round " << round;
      }
    }
    seen.emplace_back(model, key);
    // Scratch and allocating overloads must agree bit for bit.
    std::vector<std::uint64_t> scratch;
    const GoalSetKey scratch_key = canonicalize_goals(goals, scratch);
    EXPECT_EQ(scratch_key, key);
  }
  EXPECT_GT(contradictions, 100) << "fuzz should exercise contradictions";
  EXPECT_GT(seen.size(), 200u);
}

// --- Cache counters --------------------------------------------------------

TEST(JustifyCacheStats, CountersArePlumbedIntoStatsAndMetrics) {
  const netlist::Netlist nl = generated_circuit(27);
  util::MetricsRegistry metrics;
  PathFinderOptions opt;
  opt.num_threads = 4;
  opt.justify_cache = JustifyCacheMode::kShared;
  opt.metrics = &metrics;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  const PathFinderStats stats = finder.run([](const TruePath&) {});

  EXPECT_GT(stats.cache_hits + stats.cache_misses, 0);
  EXPECT_EQ(stats.cache_inserts + stats.cache_insert_races +
                stats.cache_full_drops,
            stats.cache_misses)
      << "every miss resolves to exactly one insert outcome";

  std::ostringstream os;
  metrics.write_json(os);
  const std::string json = os.str();
  for (const char* key :
       {"pathfinder.justify_cache.hits", "pathfinder.justify_cache.misses",
        "pathfinder.justify_cache.prunes",
        "pathfinder.justify_cache.inserts",
        "pathfinder.justify_cache.insert_races",
        "pathfinder.justify_cache.full_drops",
        "pathfinder.justify_cache.implication_refutes",
        "pathfinder.justify_cache.solver_escalations",
        "pathfinder.justify_cache.subset_hits",
        "pathfinder.justify_cache.negative_hits"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace sasta::sta
