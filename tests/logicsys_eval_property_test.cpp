// Property tests of the three-valued evaluation used by the implication
// engine: eval3 must agree exactly with brute-force enumeration of the X
// inputs for random functions, and must be monotone in the information
// order (more-defined inputs can only make the output more defined, never
// change a determined value).
#include <gtest/gtest.h>

#include "cell/boolfunc.h"
#include "util/rng.h"

namespace sasta::cell {
namespace {

using logicsys::TriVal;

TriVal brute_eval3(const TruthTable& t, const std::vector<TriVal>& in) {
  bool saw0 = false, saw1 = false;
  const int n = t.num_inputs();
  for (std::uint32_t m = 0; m < (1u << n); ++m) {
    bool consistent = true;
    for (int i = 0; i < n && consistent; ++i) {
      const bool bit = (m >> i) & 1;
      if (in[i] == TriVal::kOne && !bit) consistent = false;
      if (in[i] == TriVal::kZero && bit) consistent = false;
    }
    if (!consistent) continue;
    (t.value(m) ? saw1 : saw0) = true;
  }
  if (saw0 && saw1) return TriVal::kX;
  return saw1 ? TriVal::kOne : TriVal::kZero;
}

TEST(Eval3Property, MatchesBruteForceOnRandomFunctions) {
  util::Rng rng(515);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    const TruthTable t = TruthTable::from_bits(rng.next_u64(), n);
    std::vector<TriVal> in(n);
    for (auto& v : in) {
      const auto r = rng.next_below(3);
      v = r == 0 ? TriVal::kZero : r == 1 ? TriVal::kOne : TriVal::kX;
    }
    EXPECT_EQ(t.eval3(in), brute_eval3(t, in))
        << "n=" << n << " tt=" << t.to_string();
  }
}

TEST(Eval3Property, MonotoneInInformationOrder) {
  util::Rng rng(616);
  for (int trial = 0; trial < 200; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    const TruthTable t = TruthTable::from_bits(rng.next_u64(), n);
    std::vector<TriVal> weak(n);
    for (auto& v : weak) {
      const auto r = rng.next_below(3);
      v = r == 0 ? TriVal::kZero : r == 1 ? TriVal::kOne : TriVal::kX;
    }
    // Refine one X input (if any) to a constant.
    std::vector<TriVal> strong = weak;
    for (auto& v : strong) {
      if (v == TriVal::kX) {
        v = rng.next_bool() ? TriVal::kOne : TriVal::kZero;
        break;
      }
    }
    const TriVal w = t.eval3(weak);
    const TriVal s = t.eval3(strong);
    if (w != TriVal::kX) {
      EXPECT_EQ(s, w) << "determined output changed under refinement";
    }
  }
}

TEST(Eval3Property, AllKnownInputsAlwaysDetermined) {
  util::Rng rng(717);
  for (int trial = 0; trial < 100; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(5));
    const TruthTable t = TruthTable::from_bits(rng.next_u64(), n);
    std::vector<TriVal> in(n);
    std::uint32_t m = 0;
    for (int i = 0; i < n; ++i) {
      const bool bit = rng.next_bool();
      in[i] = logicsys::tri_from_bool(bit);
      if (bit) m |= 1u << i;
    }
    EXPECT_EQ(t.eval3(in), logicsys::tri_from_bool(t.value(m)));
  }
}

}  // namespace
}  // namespace sasta::cell
