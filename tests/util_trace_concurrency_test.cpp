// TraceCollector under concurrent TraceSpan open/close across worker
// threads: the emitted Chrome-trace JSON must stay syntactically valid, no
// event may be torn (mixed fields from two writers), and serialization
// must be safe while writers are still recording.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "test_json.h"
#include "util/trace.h"

namespace sasta::util {
namespace {

// Each worker opens nested spans whose names encode the worker id, so a
// torn event (name from one writer, tid from another) is detectable by
// cross-checking the two fields on every recorded event.
TEST(TraceConcurrency, NestedSpansAcrossWorkersAreNeverTorn) {
  TraceCollector trace;
  constexpr int kWorkers = 8;
  constexpr int kOuterSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWorkers; ++t) {
    threads.emplace_back([&trace, t] {
      const std::string tag = "worker" + std::to_string(t);
      for (int i = 0; i < kOuterSpans; ++i) {
        TraceSpan outer(&trace, tag + ".outer", t + 1);
        TraceSpan inner(&trace, tag + ".inner", t + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<TraceEvent> events = trace.events();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kWorkers) * kOuterSpans * 2);
  std::set<int> tids;
  for (const TraceEvent& e : events) {
    // Tear check: the name's worker tag must agree with the tid lane.
    const std::string want = "worker" + std::to_string(e.tid - 1) + ".";
    EXPECT_EQ(e.name.rfind(want, 0), 0u)
        << "event name " << e.name << " recorded under tid " << e.tid;
    EXPECT_GE(e.dur_us, 0.0);
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_EQ(e.ph, 'X');
    tids.insert(e.tid);
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kWorkers));
}

// write_json is documented as safe while writers run; the snapshot it
// serializes must itself be valid JSON at any interleaving point.
TEST(TraceConcurrency, SerializationWhileWritersRunIsValidJson) {
  TraceCollector trace;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&trace, &stop, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span(&trace, "hot \"span\"\n", t + 1);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    std::ostringstream os;
    trace.write_json(os);
    const std::string json = os.str();
    EXPECT_TRUE(testing::is_valid_json(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();

  // The final quiescent serialization carries every recorded event intact.
  std::ostringstream os;
  trace.write_json(os);
  EXPECT_TRUE(testing::is_valid_json(os.str()));
  EXPECT_EQ(trace.events().size(), trace.num_events());
}

}  // namespace
}  // namespace sasta::util
