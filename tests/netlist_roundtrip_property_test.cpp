// End-to-end round-trip property: generated circuit -> .bench text ->
// re-parse -> technology map must preserve the logic function; the mapped
// netlist -> Verilog -> re-parse must preserve it again.
#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "netlist/iscas_gen.h"
#include "netlist/levelize.h"
#include "netlist/techmap.h"
#include "netlist/verilog.h"
#include "util/rng.h"

namespace sasta::netlist {
namespace {

const cell::Library& lib() {
  static const cell::Library l = cell::build_standard_library();
  return l;
}

std::vector<int> eval_mapped(const Netlist& nl, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int> value(nl.num_nets(), 0);
  for (NetId pi : nl.primary_inputs()) value[pi] = rng.next_bool() ? 1 : 0;
  const auto lv = levelize(nl);
  for (InstId ii : lv.topo_order) {
    const Instance& inst = nl.instance(ii);
    std::uint32_t m = 0;
    for (std::size_t p = 0; p < inst.inputs.size(); ++p) {
      if (value[inst.inputs[p]]) m |= 1u << p;
    }
    value[inst.output] = inst.cell->function().value(m) ? 1 : 0;
  }
  std::vector<int> out;
  for (NetId po : nl.primary_outputs()) out.push_back(value[po]);
  return out;
}

class RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTrip, BenchAndVerilogPreserveFunction) {
  GeneratorProfile p;
  p.name = "rt";
  p.num_inputs = 10;
  p.num_outputs = 5;
  p.num_gates = 40;
  p.depth = 6;
  p.seed = GetParam();
  const PrimNetlist prim = generate_iscas_like(p);

  // bench round trip at the primitive level.
  const PrimNetlist reparsed =
      parse_bench_string(write_bench_string(prim), "rt");
  ASSERT_EQ(reparsed.gates.size(), prim.gates.size());

  const Netlist mapped_a = tech_map(prim, lib()).netlist;
  const Netlist mapped_b = tech_map(reparsed, lib()).netlist;
  // Same PI/PO interface order by construction.
  ASSERT_EQ(mapped_a.primary_inputs().size(),
            mapped_b.primary_inputs().size());
  for (std::uint64_t s = 1; s <= 16; ++s) {
    EXPECT_EQ(eval_mapped(mapped_a, s), eval_mapped(mapped_b, s))
        << "seed " << s;
  }

  // Verilog round trip at the mapped level.
  const Netlist reloaded =
      parse_verilog_string(write_verilog_string(mapped_a), lib());
  ASSERT_EQ(reloaded.num_instances(), mapped_a.num_instances());
  for (std::uint64_t s = 1; s <= 16; ++s) {
    EXPECT_EQ(eval_mapped(reloaded, s), eval_mapped(mapped_a, s))
        << "verilog seed " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace sasta::netlist
