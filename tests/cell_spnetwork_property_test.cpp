// Structural properties of series-parallel networks:
//   * dual() is an involution;
//   * conduction of the dual with active-low leaves is the complement of
//     the original's conduction (the CMOS complementarity theorem that
//     Cell::validate() relies on);
//   * stack depth and device count behave as the series/parallel algebra
//     dictates.
#include <gtest/gtest.h>

#include "cell/spnetwork.h"
#include "util/rng.h"

namespace sasta::cell {
namespace {

using logicsys::TriVal;

SpTree random_tree(util::Rng& rng, int depth, int num_pins) {
  if (depth == 0 || rng.next_bool(0.4)) {
    return SpTree::leaf(static_cast<int>(rng.next_below(num_pins)),
                        rng.next_bool(0.2));
  }
  std::vector<SpTree> kids;
  const int n = 2 + static_cast<int>(rng.next_below(2));
  for (int i = 0; i < n; ++i) kids.push_back(random_tree(rng, depth - 1, num_pins));
  return rng.next_bool() ? SpTree::series(std::move(kids))
                         : SpTree::parallel(std::move(kids));
}

TEST(SpTreeProperty, DualIsInvolution) {
  util::Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const SpTree t = random_tree(rng, 3, 4);
    const SpTree dd = t.dual().dual();
    const std::vector<std::string> names{"A", "B", "C", "D"};
    EXPECT_EQ(dd.to_string(names), t.to_string(names));
    EXPECT_EQ(dd.num_devices(), t.num_devices());
  }
}

TEST(SpTreeProperty, DualConductionIsComplement) {
  util::Rng rng(32);
  for (int trial = 0; trial < 100; ++trial) {
    const SpTree t = random_tree(rng, 3, 4);
    const SpTree d = t.dual();
    for (std::uint32_t m = 0; m < 16; ++m) {
      std::vector<TriVal> vals(4);
      for (int i = 0; i < 4; ++i)

        vals[i] = logicsys::tri_from_bool((m >> i) & 1);
      const TriVal a = t.conducts(vals);
      const TriVal b = d.conducts(vals, /*active_low_leaves=*/true);
      EXPECT_EQ(a == TriVal::kOne, b == TriVal::kZero) << "m=" << m;
    }
  }
}

TEST(SpTreeProperty, DepthAlgebra) {
  const SpTree s = SpTree::series(
      SpTree::leaf(0), SpTree::series(SpTree::leaf(1), SpTree::leaf(2)));
  EXPECT_EQ(s.stack_depth(), 3);
  const SpTree p = SpTree::parallel(s, SpTree::leaf(3));
  EXPECT_EQ(p.stack_depth(), 3);
  EXPECT_EQ(p.dual().stack_depth(), 1 + 1);  // dual: series(parallel..,leaf)
  EXPECT_EQ(p.num_devices(), 4);
}

TEST(SpTreeProperty, XLeafGivesXUnlessDominated) {
  // series(leaf0, leaf1): leaf0=0 dominates X on leaf1.
  const SpTree s = SpTree::series(SpTree::leaf(0), SpTree::leaf(1));
  const std::vector<TriVal> v{TriVal::kZero, TriVal::kX};
  EXPECT_EQ(s.conducts(v), TriVal::kZero);
  const std::vector<TriVal> w{TriVal::kOne, TriVal::kX};
  EXPECT_EQ(s.conducts(w), TriVal::kX);
}

}  // namespace
}  // namespace sasta::cell
