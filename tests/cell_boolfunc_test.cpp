#include <gtest/gtest.h>

#include <algorithm>

#include "cell/boolfunc.h"
#include "util/check.h"
#include "util/rng.h"

namespace sasta::cell {
namespace {

using logicsys::TriVal;

TruthTable ao22() {
  // Z = A*B + C*D with pins A=0, B=1, C=2, D=3.
  const ExprPtr f = Expr::ou(Expr::et(Expr::var(0), Expr::var(1)),
                             Expr::et(Expr::var(2), Expr::var(3)));
  return TruthTable::from_expr(*f, 4);
}

TEST(Expr, EvaluateAndPrint) {
  const ExprPtr f = Expr::et(Expr::ou(Expr::var(0), Expr::var(1)),
                             Expr::inv(Expr::var(2)));
  EXPECT_TRUE(f->evaluate(0b001));   // A=1, C=0
  EXPECT_FALSE(f->evaluate(0b100));  // only C=1
  EXPECT_FALSE(f->evaluate(0b101));  // A=1 but C=1
  EXPECT_EQ(f->max_pin_plus_one(), 3);
  const std::string names[] = {"A", "B", "C"};
  EXPECT_EQ(f->to_string(names), "((A+B)*!C)");
}

TEST(TruthTable, Ao22Minterms) {
  const TruthTable t = ao22();
  EXPECT_EQ(t.num_inputs(), 4);
  EXPECT_TRUE(t.value(0b0011));   // A=B=1
  EXPECT_TRUE(t.value(0b1100));   // C=D=1
  EXPECT_TRUE(t.value(0b1111));
  EXPECT_FALSE(t.value(0b0101));  // A=1, C=1 only
  EXPECT_FALSE(t.value(0b0000));
}

TEST(TruthTable, Eval3KnownInputs) {
  const TruthTable t = ao22();
  const TriVal all1[] = {TriVal::kOne, TriVal::kOne, TriVal::kOne, TriVal::kOne};
  EXPECT_EQ(t.eval3(all1), TriVal::kOne);
}

TEST(TruthTable, Eval3ControllingValueDecidesDespiteX) {
  const TruthTable t = ao22();
  // A=B=1 forces Z=1 regardless of C, D.
  const TriVal v[] = {TriVal::kOne, TriVal::kOne, TriVal::kX, TriVal::kX};
  EXPECT_EQ(t.eval3(v), TriVal::kOne);
  // A=0, C=0 forces Z=0 regardless of B, D.
  const TriVal w[] = {TriVal::kZero, TriVal::kX, TriVal::kZero, TriVal::kX};
  EXPECT_EQ(t.eval3(w), TriVal::kZero);
  // A=1, others X: undetermined.
  const TriVal u[] = {TriVal::kOne, TriVal::kX, TriVal::kX, TriVal::kX};
  EXPECT_EQ(t.eval3(u), TriVal::kX);
}

TEST(TruthTable, PrimeCubesOfAo22OnSet) {
  const TruthTable t = ao22();
  const auto cubes = t.prime_cubes(true);
  // ON-set primes of AB + CD are exactly {AB, CD}.
  ASSERT_EQ(cubes.size(), 2u);
  for (const auto& c : cubes) {
    EXPECT_EQ(c.num_literals(), 2);
    const bool is_ab = c.care == 0b0011 && c.values == 0b0011;
    const bool is_cd = c.care == 0b1100 && c.values == 0b1100;
    EXPECT_TRUE(is_ab || is_cd);
  }
}

TEST(TruthTable, PrimeCubesOfAo22OffSet) {
  const TruthTable t = ao22();
  const auto cubes = t.prime_cubes(false);
  // OFF-set primes of AB+CD: (A'+B')(C'+D') expanded -> A'C', A'D', B'C', B'D'.
  ASSERT_EQ(cubes.size(), 4u);
  for (const auto& c : cubes) {
    EXPECT_EQ(c.num_literals(), 2);
    EXPECT_EQ(c.values & c.care, 0u);  // all literals negative
  }
}

TEST(TruthTable, PrimeCubesSortedByLiteralCount) {
  // f = A + B*C: primes {A}, {BC} - the single-literal cube must come first.
  const ExprPtr f =
      Expr::ou(Expr::var(0), Expr::et(Expr::var(1), Expr::var(2)));
  const TruthTable t = TruthTable::from_expr(*f, 3);
  const auto cubes = t.prime_cubes(true);
  ASSERT_EQ(cubes.size(), 2u);
  EXPECT_EQ(cubes[0].num_literals(), 1);
  EXPECT_EQ(cubes[1].num_literals(), 2);
}

TEST(TruthTable, PrimeCubesCoverTargetExactly) {
  // Property: for random functions, the union of prime cubes covers exactly
  // the target minterms.
  util::Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(4));
    const std::uint64_t bits = rng.next_u64();
    const TruthTable t = TruthTable::from_bits(bits, n);
    for (bool target : {false, true}) {
      const auto cubes = t.prime_cubes(target);
      for (std::uint32_t m = 0; m < t.num_minterms(); ++m) {
        const bool in_cube =
            std::any_of(cubes.begin(), cubes.end(), [&](const Cube& c) {
              return (m & c.care) == (c.values & c.care);
            });
        EXPECT_EQ(in_cube, t.value(m) == target)
            << "n=" << n << " bits=" << bits << " m=" << m;
      }
    }
  }
}

TEST(TruthTable, BooleanDifference) {
  const TruthTable t = ao22();
  const TruthTable d = t.boolean_difference(0);  // w.r.t. A
  // dZ/dA = B * !(C*D).
  for (std::uint32_t m = 0; m < 16; ++m) {
    const bool b = (m >> 1) & 1, c = (m >> 2) & 1, dd = (m >> 3) & 1;
    EXPECT_EQ(d.value(m), b && !(c && dd)) << "m=" << m;
  }
}

TEST(TruthTable, CofactorAndDependsOn) {
  const TruthTable t = ao22();
  const TruthTable t_a1 = t.cofactor(0, true);
  // With A=1: Z = B + C*D; does not depend on A anymore.
  EXPECT_FALSE(t_a1.depends_on(0));
  EXPECT_TRUE(t_a1.depends_on(1));
  EXPECT_TRUE(t.depends_on(3));
  // Constant function depends on nothing.
  const TruthTable zero = TruthTable::from_bits(0, 3);
  for (int p = 0; p < 3; ++p) EXPECT_FALSE(zero.depends_on(p));
}

TEST(TruthTable, RejectsTooManyInputs) {
  EXPECT_THROW(TruthTable::from_bits(0, 7), util::Error);
  EXPECT_THROW(TruthTable::from_bits(0, 0), util::Error);
}

}  // namespace
}  // namespace sasta::cell
