#include <gtest/gtest.h>

#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sasta::util {
namespace {

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(SASTA_CHECK(1 + 1 == 2) << " impossible");
}

TEST(Check, FailingCheckThrowsWithMessage) {
  try {
    SASTA_CHECK(false) << " detail " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("check failed"), std::string::npos);
    EXPECT_NE(what.find("detail 42"), std::string::npos);
  }
}

TEST(Check, FailMacroThrows) {
  EXPECT_THROW(SASTA_FAIL() << " boom", Error);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, Split) {
  const auto parts = split("a, b,,c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitEmpty) { EXPECT_TRUE(split("", ",").empty()); }

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("NaNd2", "nand2"));
  EXPECT_FALSE(iequals("nand2", "nand3"));
  EXPECT_FALSE(iequals("nand", "nand2"));
}

TEST(Strings, ToUpperAndStartsWith) {
  EXPECT_EQ(to_upper("abC1"), "ABC1");
  EXPECT_TRUE(starts_with("INPUT(a)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_percent(0.1234, 1), "12.3%");
}

TEST(Strings, ParseLongAcceptsWholeIntegersOnly) {
  EXPECT_EQ(parse_long("42"), 42);
  EXPECT_EQ(parse_long("-7"), -7);
  EXPECT_EQ(parse_long("0"), 0);
  EXPECT_EQ(parse_long(""), std::nullopt);
  EXPECT_EQ(parse_long("abc"), std::nullopt);
  EXPECT_EQ(parse_long("12abc"), std::nullopt);  // stol would return 12
  EXPECT_EQ(parse_long("1.5"), std::nullopt);
  EXPECT_EQ(parse_long(" 3"), std::nullopt);  // stol would skip the space
  EXPECT_EQ(parse_long("3 "), std::nullopt);
  EXPECT_EQ(parse_long("99999999999999999999999"), std::nullopt);  // overflow
}

TEST(Strings, ParseUlongRejectsNegativeInsteadOfWrapping) {
  EXPECT_EQ(parse_ulong("65536"), 65536u);
  EXPECT_EQ(parse_ulong("0"), 0u);
  // std::stoul silently wraps "-1" to ULONG_MAX; the checked parse fails.
  EXPECT_EQ(parse_ulong("-1"), std::nullopt);
  EXPECT_EQ(parse_ulong("1e4"), std::nullopt);
  EXPECT_EQ(parse_ulong(""), std::nullopt);
}

TEST(Strings, ParseDoubleAcceptsWholeNumbersOnly) {
  EXPECT_EQ(parse_double("2.5"), 2.5);
  EXPECT_EQ(parse_double("-0.1"), -0.1);
  EXPECT_EQ(parse_double("1e-9"), 1e-9);
  EXPECT_EQ(parse_double("60"), 60.0);
  EXPECT_EQ(parse_double(""), std::nullopt);
  EXPECT_EQ(parse_double("abc"), std::nullopt);
  EXPECT_EQ(parse_double("2.5s"), std::nullopt);  // stod would return 2.5
  EXPECT_EQ(parse_double(" 2.5"), std::nullopt);
  EXPECT_EQ(parse_double("2.5 "), std::nullopt);
  EXPECT_EQ(parse_double("."), std::nullopt);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, RangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_in(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Log, ParseLogLevel) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST(Log, LevelFiltersBelowThreshold) {
  const LogLevel old_level = log_level();
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  set_log_level(LogLevel::kWarning);
  log_line(LogLevel::kInfo, "hidden");
  log_line(LogLevel::kWarning, "shown");
  std::cerr.rdbuf(old_buf);
  set_log_level(old_level);
  EXPECT_EQ(captured.str(), "[sasta WARN] shown\n");
}

// Concurrent log_line calls must never shear: each captured line carries
// the full prefix and one intact message (satellite fix for the old
// multi-insertion emit path).
TEST(Log, ConcurrentLinesDoNotShear) {
  const LogLevel old_level = log_level();
  std::ostringstream captured;
  std::streambuf* old_buf = std::cerr.rdbuf(captured.rdbuf());
  set_log_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        log_line(LogLevel::kInfo,
                 "worker " + std::to_string(t) + " message " +
                     std::to_string(i) + " end");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::cerr.rdbuf(old_buf);
  set_log_level(old_level);

  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[sasta INFO] worker ", 0), 0u)
        << "sheared line: " << line;
    EXPECT_EQ(line.compare(line.size() - 4, 4, " end"), 0)
        << "sheared line: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST(Rng, GaussianMomentsAndRange) {
  Rng rng(2718);
  const int n = 20000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
    ASSERT_LT(std::fabs(g), 8.0);  // sane tail at this sample size
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

}  // namespace
}  // namespace sasta::util
