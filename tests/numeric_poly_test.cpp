#include <gtest/gtest.h>

#include <cmath>

#include "numeric/poly_basis.h"
#include "numeric/poly_regression.h"
#include "util/check.h"
#include "util/rng.h"

namespace sasta::num {
namespace {

TEST(PolyBasis, TensorSizeMatchesOrders) {
  const int orders[] = {2, 1};
  const PolyBasis b = PolyBasis::tensor(orders);
  EXPECT_EQ(b.size(), 6u);  // (2+1)*(1+1)
}

TEST(PolyBasis, TotalDegreeCap) {
  const int orders[] = {2, 2};
  const PolyBasis b = PolyBasis::tensor(orders, 2);
  // Exponent pairs with i+j <= 2: (0,0),(1,0),(2,0),(0,1),(1,1),(0,2) = 6.
  EXPECT_EQ(b.size(), 6u);
}

TEST(PolyBasis, EvaluateRowMatchesManual) {
  const int orders[] = {1, 1};
  const PolyBasis b = PolyBasis::tensor(orders);
  std::vector<double> row;
  const double x[] = {2.0, 3.0};
  b.evaluate_row(x, row);
  // Basis = {1, Fo, t, Fo*t} in odometer order {(0,0),(1,0),(0,1),(1,1)}.
  ASSERT_EQ(row.size(), 4u);
  double sum = 0;
  for (double v : row) sum += v;
  EXPECT_DOUBLE_EQ(sum, 1 + 2 + 3 + 6);
}

TEST(PolyBasis, EvaluateWithCoefficients) {
  const int orders[] = {2};
  const PolyBasis b = PolyBasis::tensor(orders);
  // f(x) = 1 + 2x + 3x^2 at x=2 -> 17.
  const double coeff[] = {1, 2, 3};
  const double x[] = {2.0};
  EXPECT_DOUBLE_EQ(b.evaluate(coeff, x), 17.0);
}

TEST(PolyFit, RecoversExactPolynomial) {
  // f(a, b) = 3 + 2a - b + 0.5*a*b sampled on a grid.
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (double a : {0.0, 1.0, 2.0, 3.0}) {
    for (double b : {0.0, 1.0, 2.0}) {
      pts.push_back({a, b});
      vals.push_back(3 + 2 * a - b + 0.5 * a * b);
    }
  }
  const int orders[] = {1, 1};
  const PolyFit fit = fit_polynomial(PolyBasis::tensor(orders), pts, vals);
  EXPECT_LT(fit.max_rel_error, 1e-10);
  EXPECT_NEAR(fit.evaluate(std::vector<double>{2.5, 1.5}), 3 + 5 - 1.5 + 1.875,
              1e-9);
}

TEST(PolyFit, UnderdeterminedThrows) {
  std::vector<std::vector<double>> pts{{0.0}, {1.0}};
  std::vector<double> vals{1.0, 2.0};
  const int orders[] = {3};
  EXPECT_THROW(fit_polynomial(PolyBasis::tensor(orders), pts, vals),
               util::Error);
}

TEST(RecursiveFit, EscalatesOrderUntilAccurate) {
  // Cubic in one variable: first order is insufficient, recursion must
  // raise the order to >= 3.
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (int i = 0; i <= 8; ++i) {
    const double x = i * 0.5;
    pts.push_back({x});
    vals.push_back(1 + x + 0.2 * x * x * x);
  }
  RecursiveFitOptions opt;
  opt.target_max_rel_error = 1e-6;
  opt.max_order = {5};
  const PolyFit fit = fit_recursive(pts, vals, opt);
  EXPECT_LT(fit.max_rel_error, 1e-6);
}

TEST(RecursiveFit, RespectsLevelCap) {
  // Only two distinct sample values in variable 1: order there must stay
  // at 1, but the fit must still succeed.
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (double a : {0.0, 1.0, 2.0, 3.0, 4.0}) {
    for (double b : {0.0, 1.0}) {
      pts.push_back({a, b});
      vals.push_back(a * a + b);
    }
  }
  RecursiveFitOptions opt;
  opt.target_max_rel_error = 1e-9;
  opt.max_order = {4, 4};
  const PolyFit fit = fit_recursive(pts, vals, opt);
  EXPECT_LT(fit.max_rel_error, 1e-8);
  for (const auto& m : fit.basis.monomials()) {
    EXPECT_LE(m.exp[1], 1) << "order in a two-level variable must stay <= 1";
  }
}

TEST(RecursiveFit, MultivariateDelayShape) {
  // Synthetic delay-like surface: d = 10 + 5*Fo + 2*t + 0.3*Fo*t - 4*V.
  util::Rng rng(9);
  std::vector<std::vector<double>> pts;
  std::vector<double> vals;
  for (double fo : {1.0, 2.0, 4.0, 8.0}) {
    for (double t : {0.02, 0.05, 0.1, 0.2}) {
      for (double v : {0.9, 1.0, 1.1}) {
        pts.push_back({fo, t, v});
        vals.push_back(10 + 5 * fo + 2 * t + 0.3 * fo * t - 4 * v);
      }
    }
  }
  RecursiveFitOptions opt;
  opt.target_max_rel_error = 1e-8;
  opt.max_order = {3, 3, 2};
  const PolyFit fit = fit_recursive(pts, vals, opt);
  EXPECT_LT(fit.max_rel_error, 1e-7);
  // Spot-check an off-grid point.
  const double ref = 10 + 5 * 3 + 2 * 0.07 + 0.3 * 3 * 0.07 - 4 * 0.95;
  EXPECT_NEAR(fit.evaluate(std::vector<double>{3.0, 0.07, 0.95}), ref, 1e-6);
}

}  // namespace
}  // namespace sasta::num
