#include <gtest/gtest.h>

#include "netlist/fig4_testcircuit.h"
#include "sta/variation.h"
#include "tech/technology.h"
#include "test_charlib.h"

namespace sasta::sta {
namespace {

StaResult analyzed() {
  static const netlist::Fig4Circuit fig4 =
      netlist::build_fig4_circuit(testing::test_library());
  StaToolOptions opt;
  opt.keep_worst = 32;
  StaTool tool(fig4.nl, testing::test_charlib("90nm"),
               tech::technology("90nm"), opt);
  return tool.run();
}

const netlist::Netlist& circuit() {
  static const netlist::Fig4Circuit fig4 =
      netlist::build_fig4_circuit(testing::test_library());
  return fig4.nl;
}

TEST(Variation, ZeroSigmaReproducesNominal) {
  const StaResult res = analyzed();
  VariationModel model;
  model.sigma_global = 0.0;
  model.sigma_local = 0.0;
  const auto mc = monte_carlo_critical(circuit(), res, model, 50);
  for (double d : mc.samples) EXPECT_NEAR(d, mc.nominal, 1e-15);
  EXPECT_NEAR(mc.stddev, 0.0, 1e-18);
  EXPECT_DOUBLE_EQ(mc.criticality_switches, 0.0);
}

TEST(Variation, DistributionStatisticsSane) {
  const StaResult res = analyzed();
  VariationModel model;
  model.seed = 7;
  const auto mc = monte_carlo_critical(circuit(), res, model, 2000);
  EXPECT_EQ(mc.samples.size(), 2000u);
  // Mean within a few sigma-of-mean of nominal; max > nominal (variation
  // only pushes the max of several paths up on average).
  EXPECT_NEAR(mc.mean, mc.nominal, 0.15 * mc.nominal);
  EXPECT_GT(mc.stddev, 0.01 * mc.nominal);
  EXPECT_LT(mc.stddev, 0.25 * mc.nominal);
  // Quantiles ordered.
  EXPECT_LE(mc.p50, mc.p95);
  EXPECT_LE(mc.p95, mc.p99);
  EXPECT_GT(mc.p99, mc.nominal * 0.9);
}

TEST(Variation, Deterministic) {
  const StaResult res = analyzed();
  VariationModel model;
  model.seed = 42;
  const auto a = monte_carlo_critical(circuit(), res, model, 100);
  const auto b = monte_carlo_critical(circuit(), res, model, 100);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i], b.samples[i]);
  }
  model.seed = 43;
  const auto c = monte_carlo_critical(circuit(), res, model, 100);
  EXPECT_NE(a.samples, c.samples);
}

TEST(Variation, CriticalityCanSwitchUnderLocalVariation) {
  // With several near-critical sensitizations (the Fig.4 circuit has two
  // vectors within ~5 %), local variation sometimes promotes the runner-up:
  // exactly the paper's motivation for reporting all vectors.
  const StaResult res = analyzed();
  VariationModel model;
  model.sigma_global = 0.0;
  model.sigma_local = 0.10;
  model.seed = 11;
  const auto mc = monte_carlo_critical(circuit(), res, model, 2000);
  EXPECT_GT(mc.criticality_switches, 0.02);
  EXPECT_LT(mc.criticality_switches, 0.98);
}

TEST(Variation, RejectsDegenerateInput) {
  const StaResult res = analyzed();
  EXPECT_THROW(monte_carlo_critical(circuit(), res, VariationModel{}, 0),
               util::Error);
  StaResult empty;
  EXPECT_THROW(monte_carlo_critical(circuit(), empty, VariationModel{}, 10),
               util::Error);
}

}  // namespace
}  // namespace sasta::sta
