#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "charlib/characterizer.h"
#include "charlib/sensitization.h"
#include "tech/technology.h"

namespace sasta::cell {
namespace {

const Library& lib() {
  static const Library l = build_standard_library();
  return l;
}

TEST(ExtraCells, Aoi211Function) {
  const Cell& c = lib().cell("AOI211");
  // Z = !((A*B) + C + D)
  EXPECT_TRUE(c.function().value(0b0000));
  EXPECT_TRUE(c.function().value(0b0001));   // A alone
  EXPECT_FALSE(c.function().value(0b0011));  // A*B
  EXPECT_FALSE(c.function().value(0b0100));  // C
  EXPECT_FALSE(c.function().value(0b1000));  // D
  EXPECT_TRUE(c.is_complex());
  EXPECT_EQ(c.transistor_count(), 8);  // 4 PDN + 4 PUN
}

TEST(ExtraCells, Oai211Function) {
  const Cell& c = lib().cell("OAI211");
  // Z = !((A+B) * C * D)
  EXPECT_TRUE(c.function().value(0b0000));
  EXPECT_FALSE(c.function().value(0b1101));  // A, C, D
  EXPECT_FALSE(c.function().value(0b1110));  // B, C, D
  EXPECT_TRUE(c.function().value(0b1100));   // C, D but A=B=0
  EXPECT_TRUE(c.is_complex());
}

TEST(ExtraCells, Maj3FunctionAndStructure) {
  const Cell& c = lib().cell("MAJ3");
  for (std::uint32_t m = 0; m < 8; ++m) {
    const int ones = __builtin_popcount(m);
    EXPECT_EQ(c.function().value(m), ones >= 2) << "minterm " << m;
  }
  // Classic 5-device carry PDN (A||B pair shared), plus dual PUN and the
  // output inverter.
  EXPECT_EQ(c.pdn().num_devices(), 5);
  EXPECT_EQ(c.transistor_count(), 12);
  EXPECT_TRUE(c.is_complex());
}

TEST(ExtraCells, Maj3SensitizationIsXorOfOthers) {
  const Cell& c = lib().cell("MAJ3");
  for (int pin = 0; pin < 3; ++pin) {
    const auto vecs = charlib::enumerate_sensitization(c.function(), pin);
    ASSERT_EQ(vecs.size(), 2u) << "pin " << pin;
    for (const auto& v : vecs) {
      // The two side inputs must differ (B xor C condition).
      int side_vals[2], k = 0;
      for (int q = 0; q < 3; ++q) {
        if (q != pin) side_vals[k++] = v.side_value(q) ? 1 : 0;
      }
      EXPECT_NE(side_vals[0], side_vals[1]);
    }
  }
}

TEST(ExtraCells, Maj3PerVectorDelayDiffers) {
  // The shared-pair PDN makes the two vectors of input C electrically
  // distinct (one conducts through the A-leg of the pair, one through B).
  const Cell& c = lib().cell("MAJ3");
  const auto& t = tech::technology("90nm");
  const auto vecs = charlib::enumerate_sensitization(c.function(), 2);
  ASSERT_EQ(vecs.size(), 2u);
  // Smoke: both vectors propagate cleanly through the real transistor
  // implementation for both edges.
  for (const auto& v : vecs) {
    for (const spice::Edge e : {spice::Edge::kRise, spice::Edge::kFall}) {
      const charlib::ModelPoint pt{2.0, t.default_input_slew,
                                   t.nominal_temp_c, t.vdd};
      const auto m = charlib::measure_arc_point(c, t, v, e, pt);
      EXPECT_GT(m.delay_s, 1e-12);
      EXPECT_LT(m.delay_s, 500e-12);
    }
  }
}

}  // namespace
}  // namespace sasta::cell
