#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "netlist/levelize.h"
#include "sta/justify.h"

namespace sasta::sta {
namespace {

using logicsys::NineVal;
using netlist::NetId;

const cell::Library& lib() {
  static const cell::Library l = cell::build_standard_library();
  return l;
}

TEST(AssignmentState, RefineAndRollback) {
  AssignmentState s(3);
  const auto m0 = s.mark();
  auto r = s.refine_steady(0, true);
  EXPECT_EQ(r.conflict, kScenarioNone);
  EXPECT_EQ(r.changed, kScenarioBoth);
  EXPECT_EQ(s.value(0).r, NineVal::stable1());
  // Re-refining with the same value changes nothing.
  r = s.refine_steady(0, true);
  EXPECT_EQ(r.changed, kScenarioNone);
  // Conflicting value reports conflict and keeps the old value.
  r = s.refine_steady(0, false);
  EXPECT_EQ(r.conflict, kScenarioBoth);
  EXPECT_EQ(s.value(0).r, NineVal::stable1());
  s.rollback(m0);
  EXPECT_EQ(s.value(0).r, NineVal::unknown());
}

TEST(AssignmentState, SemiUndeterminedRefinement) {
  AssignmentState s(1);
  // X0 (settles to 0) then steady-0: compatible, narrows to stable0.
  s.refine(0, NineVal::x0(), NineVal::x0());
  const auto r = s.refine_steady(0, false);
  EXPECT_EQ(r.conflict, kScenarioNone);
  EXPECT_EQ(s.value(0).r, NineVal::stable0());
  // Steady-1 now conflicts in both scenarios.
  const auto r2 = s.refine_steady(0, true);
  EXPECT_EQ(r2.conflict, kScenarioBoth);
}

TEST(AssignmentState, JustifiedFlagRollsBack) {
  AssignmentState s(2);
  const auto m = s.mark();
  s.mark_justified(1);
  EXPECT_TRUE(s.justified(1));
  s.rollback(m);
  EXPECT_FALSE(s.justified(1));
}

TEST(AssignmentState, ScenariosIndependent) {
  AssignmentState s(1);
  const auto r = s.refine(0, NineVal::rise(), NineVal::fall());
  EXPECT_EQ(r.changed, kScenarioBoth);
  // stable1 conflicts with RISE (init 0) but also with FALL (fin 0):
  const auto r2 = s.refine_steady(0, true);
  EXPECT_EQ(r2.conflict, kScenarioBoth);
  // X1-style value (fin 1) conflicts with FALL only; RISE already refines
  // X1, so scenario R is unchanged.
  const auto r3 = s.refine(0, NineVal::x1(), NineVal::x1());
  EXPECT_EQ(r3.conflict, kScenarioF);
  EXPECT_EQ(r3.changed, kScenarioNone);
  EXPECT_EQ(s.value(0).r, NineVal::rise());  // meet(R, X1) == R
  EXPECT_EQ(s.value(0).f, NineVal::fall());  // conflict kept the old value
}

/// Netlist: z = AND2(a, b).
struct And2Fixture {
  netlist::Netlist nl{"and2"};
  NetId a, b, z;
  And2Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    z = nl.add_net("z");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    nl.add_instance("g0", lib().find("AND2"), {a, b}, z);
    nl.mark_primary_output(z);
  }
};

// The paper's own example: "a falling transition applied to input A of an
// AND2 gate with an undetermined value on B leads to ... a semi-undetermined
// logic value represented as X0".
TEST(Implication, FallingIntoAnd2GivesX0) {
  And2Fixture f;
  AssignmentState s(f.nl.num_nets());
  ImplicationEngine eng(f.nl, s);
  const auto r = eng.assign_dual(f.a, NineVal::fall(), NineVal::fall());
  EXPECT_EQ(r.conflict, kScenarioNone);
  EXPECT_EQ(s.value(f.z).r, NineVal::x0());
  EXPECT_EQ(s.value(f.z).f, NineVal::x0());
}

TEST(Implication, ControlledGateProducesSteadyOutput) {
  And2Fixture f;
  AssignmentState s(f.nl.num_nets());
  ImplicationEngine eng(f.nl, s);
  eng.assign_dual(f.a, NineVal::rise(), NineVal::fall());
  const auto r = eng.assign_steady(f.b, false);
  EXPECT_EQ(r.conflict, kScenarioNone);
  EXPECT_EQ(s.value(f.z).r, NineVal::stable0());
}

TEST(Implication, SensitizedGatePropagatesBothScenarios) {
  And2Fixture f;
  AssignmentState s(f.nl.num_nets());
  ImplicationEngine eng(f.nl, s);
  eng.assign_dual(f.a, NineVal::rise(), NineVal::fall());
  eng.assign_steady(f.b, true);
  EXPECT_EQ(s.value(f.z).r, NineVal::rise());
  EXPECT_EQ(s.value(f.z).f, NineVal::fall());
}

TEST(Implication, EarlyConflictThroughChain) {
  // z = AND2(a, b); w = NOR2(z, c).  Setting w=1 steady requires z=0 and
  // c=0; a rising 'a' with b=1 forces z to RISE -> conflict on scenario R
  // when we then require z steady 0... exercised via direct refinement.
  And2Fixture f;
  AssignmentState s(f.nl.num_nets());
  ImplicationEngine eng(f.nl, s);
  eng.assign_dual(f.a, NineVal::rise(), NineVal::fall());
  eng.assign_steady(f.b, true);
  // Now z is R/F transition; requiring steady 0 conflicts in R (fin=1)
  // and in F (init=1).
  const auto r = eng.assign_steady(f.z, false);
  EXPECT_EQ(r.conflict, kScenarioBoth);
}

TEST(Justify, JustifiesThroughGateToPis) {
  // n1 = NAND2(a, b); justify n1 = 0 requires a = b = 1.
  netlist::Netlist nl("j");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId n1 = nl.add_net("n1");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_instance("g0", lib().find("NAND2"), {a, b}, n1);
  nl.mark_primary_output(n1);

  AssignmentState s(nl.num_nets());
  ImplicationEngine eng(nl, s);
  Justifier j(nl, s, eng);
  const auto r = j.justify(n1, false, kScenarioBoth);
  EXPECT_EQ(r.alive, kScenarioBoth);
  EXPECT_EQ(s.value(a).r, NineVal::stable1());
  EXPECT_EQ(s.value(b).r, NineVal::stable1());
  EXPECT_TRUE(s.justified(n1));
}

TEST(Justify, PicksAlternativeCubeOnConflict) {
  // z = OR2(a, b) with a forced 0: justify z=1 must use b=1.
  netlist::Netlist nl("j2");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId z = nl.add_net("z");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_instance("g0", lib().find("OR2"), {a, b}, z);
  nl.mark_primary_output(z);

  AssignmentState s(nl.num_nets());
  ImplicationEngine eng(nl, s);
  Justifier j(nl, s, eng);
  ASSERT_EQ(eng.assign_steady(a, false).conflict, kScenarioNone);
  const auto r = j.justify(z, true, kScenarioBoth);
  EXPECT_EQ(r.alive, kScenarioBoth);
  EXPECT_EQ(s.value(b).r, NineVal::stable1());
  // The conflicting cube {a=1} is pruned up-front (its literal contradicts
  // the state), so the alternative is reached without a backtrack.
  EXPECT_EQ(j.backtracks(), 0);
}

TEST(Justify, ImpossibleRequirementFails) {
  // z = AND2(a, na) with na = NOT(a): z can never be 1.
  netlist::Netlist nl("j3");
  const NetId a = nl.add_net("a");
  const NetId na = nl.add_net("na");
  const NetId z = nl.add_net("z");
  nl.mark_primary_input(a);
  nl.add_instance("g0", lib().find("INV"), {a}, na);
  nl.add_instance("g1", lib().find("AND2"), {a, na}, z);
  nl.mark_primary_output(z);

  AssignmentState s(nl.num_nets());
  ImplicationEngine eng(nl, s);
  Justifier j(nl, s, eng);
  const auto r = j.justify(z, true, kScenarioBoth);
  EXPECT_EQ(r.alive, kScenarioNone);
}

TEST(Justify, BacktrackBudgetReported) {
  // Force a failure with budget 0: first cube conflict exhausts it.
  netlist::Netlist nl("j4");
  const NetId a = nl.add_net("a");
  const NetId na = nl.add_net("na");
  const NetId z = nl.add_net("z");
  nl.mark_primary_input(a);
  nl.add_instance("g0", lib().find("INV"), {a}, na);
  nl.add_instance("g1", lib().find("AND2"), {a, na}, z);
  nl.mark_primary_output(z);

  AssignmentState s(nl.num_nets());
  ImplicationEngine eng(nl, s);
  Justifier j(nl, s, eng);
  const auto r = j.justify(z, true, kScenarioBoth, /*backtrack_budget=*/0);
  EXPECT_TRUE(r.backtrack_limited);
}

}  // namespace
}  // namespace sasta::sta
