#include <gtest/gtest.h>

#include "numeric/matrix.h"
#include "util/check.h"

namespace sasta::num {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), util::Error);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), util::Error);
  EXPECT_THROW(m(0, 2), util::Error);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  EXPECT_DOUBLE_EQ(t(0, 1), 4);
}

TEST(Matrix, Multiply) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, util::Error);
}

TEST(Matrix, MatVec) {
  Matrix a{{1, 2}, {3, 4}};
  const Vector v = a * Vector{1, 1};
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 3);
  EXPECT_DOUBLE_EQ(v[1], 7);
}

TEST(Matrix, AddSubNorm) {
  Matrix a{{3, 0}, {0, 4}};
  Matrix z = a - a;
  EXPECT_DOUBLE_EQ(z.frobenius_norm(), 0.0);
  Matrix d = a + a;
  EXPECT_DOUBLE_EQ(d(1, 1), 8.0);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(VectorOps, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW(dot({1}, {1, 2}), util::Error);
}

}  // namespace
}  // namespace sasta::num
