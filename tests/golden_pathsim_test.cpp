#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "charlib/characterizer.h"
#include "test_charlib.h"
#include "golden/pathsim.h"
#include "netlist/bench_parser.h"
#include "netlist/techmap.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"

namespace sasta::golden {
namespace {

using netlist::NetId;

const cell::Library& lib() { return sasta::testing::test_library(); }

const charlib::CharLibrary& charlib() {
  return sasta::testing::test_charlib("90nm");
}

TEST(PathSim, SingleInverterMatchesArcModel) {
  netlist::Netlist nl("inv1");
  const NetId a = nl.add_net("a");
  const NetId z = nl.add_net("z");
  nl.mark_primary_input(a);
  nl.add_instance("g0", lib().find("INV"), {a}, z);
  nl.mark_primary_output(z);

  sta::TruePath p;
  p.source = a;
  p.sink = z;
  p.launch_edge = spice::Edge::kRise;
  p.steps = {{0, 0, 0}};

  const auto res =
      simulate_path(nl, charlib(), tech::technology("90nm"), p);
  EXPECT_TRUE(res.converged);
  EXPECT_GT(res.path_delay, 1e-12);
  EXPECT_LT(res.path_delay, 300e-12);
  ASSERT_EQ(res.stage_delays.size(), 1u);
  EXPECT_NEAR(res.stage_delays[0], res.path_delay, 1e-15);
  EXPECT_GT(res.sink_slew, 0.0);

  // The polynomial model for the same arc must agree within ~12 %.
  sta::DelayCalculator calc(nl, charlib(), tech::technology("90nm"));
  const auto timed = calc.compute(p);
  EXPECT_NEAR(timed.delay, res.path_delay, 0.12 * res.path_delay);
}

TEST(PathSim, ChainDelaysAccumulate) {
  // Chain of 4 inverters.
  netlist::Netlist nl("chain");
  NetId prev = nl.add_net("a");
  nl.mark_primary_input(prev);
  sta::TruePath p;
  p.source = prev;
  p.launch_edge = spice::Edge::kFall;
  for (int i = 0; i < 4; ++i) {
    const NetId next = nl.add_net("n" + std::to_string(i));
    const netlist::InstId inst =
        nl.add_instance("g" + std::to_string(i), lib().find("INV"), {prev},
                        next);
    p.steps.push_back({inst, 0, 0});
    prev = next;
  }
  nl.mark_primary_output(prev);
  p.sink = prev;

  const auto res = simulate_path(nl, charlib(), tech::technology("90nm"), p);
  EXPECT_TRUE(res.converged);
  ASSERT_EQ(res.stage_delays.size(), 4u);
  double sum = 0;
  for (double d : res.stage_delays) {
    EXPECT_GT(d, 0.0);
    sum += d;
  }
  EXPECT_NEAR(sum, res.path_delay, 1e-14);

  // Model total within ~15 % of golden.
  sta::DelayCalculator calc(nl, charlib(), tech::technology("90nm"));
  const auto timed = calc.compute(p);
  EXPECT_NEAR(timed.delay, res.path_delay, 0.15 * res.path_delay);
}

// The end-to-end claim of the paper: for a path through a complex gate, the
// golden (electrical) delay differs between sensitization vectors, and the
// vector-aware polynomial model tracks each one.
TEST(PathSim, Ao22PathVectorDependenceTracked) {
  netlist::Netlist nl("ao22path");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  const NetId d = nl.add_net("d");
  const NetId n1 = nl.add_net("n1");
  const NetId z = nl.add_net("z");
  for (NetId pi : {a, b, c, d}) nl.mark_primary_input(pi);
  const netlist::InstId g0 =
      nl.add_instance("g0", lib().find("AO22"), {a, b, c, d}, n1);
  const netlist::InstId g1 = nl.add_instance("g1", lib().find("INV"), {n1}, z);
  nl.mark_primary_output(z);

  sta::DelayCalculator calc(nl, charlib(), tech::technology("90nm"));
  std::vector<double> golden_delays, model_delays;
  for (int vec = 0; vec < 3; ++vec) {
    sta::TruePath p;
    p.source = a;
    p.sink = z;
    p.launch_edge = spice::Edge::kFall;  // larger vector spread on falls
    p.steps = {{g0, 0, vec}, {g1, 0, 0}};
    const auto g = simulate_path(nl, charlib(), tech::technology("90nm"), p);
    EXPECT_TRUE(g.converged);
    golden_delays.push_back(g.path_delay);
    model_delays.push_back(calc.compute(p).delay);
  }
  // Vector 0 (Case 1) is the fastest electrically.
  EXPECT_LT(golden_delays[0], golden_delays[1]);
  EXPECT_LT(golden_delays[0], golden_delays[2]);
  // The model must reproduce the ordering of case 1 vs the slower cases.
  EXPECT_LT(model_delays[0], model_delays[1]);
  EXPECT_LT(model_delays[0], model_delays[2]);
  // And each vector's model delay must be within ~12 % of its golden delay.
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(model_delays[i], golden_delays[i], 0.12 * golden_delays[i])
        << "vector " << i;
  }
}

TEST(PathSim, LoadsFromRealFanoutSlowPath) {
  // Same 2-stage path, but the first stage also drives two extra NAND4
  // loads: golden delay must increase.
  auto build = [&](bool extra_load, double* delay) {
    netlist::Netlist nl("load");
    const NetId a = nl.add_net("a");
    const NetId b = nl.add_net("b");
    const NetId n1 = nl.add_net("n1");
    const NetId z = nl.add_net("z");
    nl.mark_primary_input(a);
    nl.mark_primary_input(b);
    const netlist::InstId g0 =
        nl.add_instance("g0", lib().find("NAND2"), {a, b}, n1);
    const netlist::InstId g1 =
        nl.add_instance("g1", lib().find("INV"), {n1}, z);
    nl.mark_primary_output(z);
    if (extra_load) {
      const NetId c = nl.add_net("c");
      const NetId e1 = nl.add_net("e1");
      const NetId e2 = nl.add_net("e2");
      nl.mark_primary_input(c);
      nl.add_instance("x0", lib().find("NAND4"), {n1, n1 == 0 ? c : c, c, c},
                      e1);
      nl.add_instance("x1", lib().find("NOR3"), {n1, c, e1}, e2);
      nl.mark_primary_output(e2);
    }
    sta::TruePath p;
    p.source = a;
    p.sink = z;
    p.launch_edge = spice::Edge::kRise;
    p.steps = {{g0, 0, 0}, {g1, 0, 0}};
    const auto g = simulate_path(nl, charlib(), tech::technology("90nm"), p);
    *delay = g.path_delay;
  };
  double light = 0, heavy = 0;
  build(false, &light);
  build(true, &heavy);
  EXPECT_GT(heavy, light * 1.05);
}

}  // namespace
}  // namespace sasta::golden
