#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "netlist/bench_writer.h"
#include "netlist/iscas_gen.h"
#include "netlist/levelize.h"
#include "netlist/techmap.h"
#include "util/check.h"

namespace sasta::netlist {
namespace {

TEST(IscasGen, ProfilesMatchPublishedInterfaceStats) {
  const GeneratorProfile c432 = iscas_profile("c432");
  EXPECT_EQ(c432.num_inputs, 36);
  EXPECT_EQ(c432.num_outputs, 7);
  EXPECT_EQ(c432.num_gates, 160);
  const GeneratorProfile c6288 = iscas_profile("c6288");
  EXPECT_EQ(c6288.num_inputs, 32);
  EXPECT_EQ(c6288.num_outputs, 32);
  EXPECT_THROW(iscas_profile("c9999"), util::Error);
  EXPECT_EQ(iscas_profile_names().size(), 10u);
}

TEST(IscasGen, GeneratesValidDeterministicCircuit) {
  const GeneratorProfile p = iscas_profile("c432");
  const PrimNetlist a = generate_iscas_like(p);
  const PrimNetlist b = generate_iscas_like(p);
  EXPECT_EQ(a.gates.size(), b.gates.size());
  EXPECT_EQ(write_bench_string(a), write_bench_string(b));
  EXPECT_EQ(static_cast<int>(a.gates.size()), p.num_gates);
  EXPECT_EQ(static_cast<int>(a.inputs.size()), p.num_inputs);
  EXPECT_GE(static_cast<int>(a.outputs.size()), p.num_outputs);
}

TEST(IscasGen, DifferentSeedsDiffer) {
  GeneratorProfile p = iscas_profile("c432");
  const PrimNetlist a = generate_iscas_like(p);
  p.seed += 1;
  const PrimNetlist b = generate_iscas_like(p);
  EXPECT_NE(write_bench_string(a), write_bench_string(b));
}

TEST(IscasGen, MapsWithComplexGates) {
  static const cell::Library lib = cell::build_standard_library();
  for (const char* name : {"c432", "c880"}) {
    const PrimNetlist prim = generate_iscas_like(iscas_profile(name));
    const TechMapResult r = tech_map(prim, lib);
    EXPECT_NO_THROW(r.netlist.validate());
    // The mapped netlist must be acyclic and contain complex gates, the
    // object of study.
    const Levelization lv = levelize(r.netlist);
    EXPECT_GT(lv.max_level, 3);
    EXPECT_GT(r.netlist.complex_gate_count(), 5) << name;
  }
}

TEST(IscasGen, AllProfilesGenerate) {
  for (const auto& name : iscas_profile_names()) {
    const PrimNetlist nl = generate_iscas_like(iscas_profile(name));
    EXPECT_NO_THROW(nl.validate()) << name;
    EXPECT_GT(nl.gates.size(), 100u) << name;
  }
}

TEST(IscasGen, RejectsBadProfile) {
  GeneratorProfile p;
  p.num_inputs = 1;
  EXPECT_THROW(generate_iscas_like(p), util::Error);
}

}  // namespace
}  // namespace sasta::netlist
