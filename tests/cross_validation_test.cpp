// Cross-validation of both STA engines against brute force on randomized
// small circuits.
//
// Ground truth by exhaustive enumeration over all PI assignments:
//   steady-sensitizable(course, dir): some assignment of the other PIs makes
//     every node along the course toggle while every side input of every
//     traversed gate stays HAZARD-FREE steady - equal before and after the
//     transition AND still determined in the ternary mid-frame simulation
//     (launching input = X).  This is the paper's sensitization model
//     ("we only consider steady logic values applied to the inputs"): a
//     side input that merely returns to its value but can glitch would
//     invalidate the characterized gate delay.
//   toggle-sensitizable(course, dir): some assignment makes every course
//     node toggle (side inputs may glitch or switch: the laxer
//     functional-sensitization notion the baseline's minimal-cube check
//     admits).
//
// Invariants checked:
//   1. developed-tool courses  ==  steady-sensitizable courses
//      (sound AND complete w.r.t. the paper's model on these circuits);
//   2. every steady-sensitizable course explored by the baseline is
//      classified true (its lax static-sensitization check only errs on
//      the optimistic side for these);
//   3. steady-sensitizable courses the baseline labels false are the
//      paper's "misidentified false paths"; they must all be caught by the
//      developed tool.
//
// NOT asserted: baseline-true =&gt; sensitizable.  Static sensitization with
// free (X) side values is a well-known OPTIMISTIC criterion - it accepts
// some multi-input-switching and even some functionally-false paths.  That
// optimism is faithful commercial behaviour (it is why the paper's
// reference [8], "false-path AWARE formal STA", exists) and it is exactly
// what electrical verification catches in the paper's flow.  The test
// reports the over-acceptance count for visibility.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "baseline/baseline_tool.h"
#include "netlist/iscas_gen.h"
#include "netlist/levelize.h"
#include "netlist/techmap.h"
#include "sta/sta_tool.h"
#include "test_charlib.h"

namespace sasta {
namespace {

using netlist::NetId;

std::vector<int> simulate(const netlist::Netlist& nl, std::vector<int> value) {
  const auto lv = netlist::levelize(nl);
  for (netlist::InstId ii : lv.topo_order) {
    const netlist::Instance& inst = nl.instance(ii);
    std::uint32_t m = 0;
    for (std::size_t p = 0; p < inst.inputs.size(); ++p) {
      if (value[inst.inputs[p]]) m |= 1u << p;
    }
    value[inst.output] = inst.cell->function().value(m) ? 1 : 0;
  }
  return value;
}

/// Ternary simulation: -1 encodes X.  Used for the mid-frame (launching
/// input at X) hazard check.
std::vector<int> simulate3(const netlist::Netlist& nl, std::vector<int> value) {
  using logicsys::TriVal;
  const auto lv = netlist::levelize(nl);
  for (netlist::InstId ii : lv.topo_order) {
    const netlist::Instance& inst = nl.instance(ii);
    std::vector<TriVal> in(inst.inputs.size());
    for (std::size_t p = 0; p < inst.inputs.size(); ++p) {
      const int v = value[inst.inputs[p]];
      in[p] = v < 0 ? TriVal::kX : logicsys::tri_from_bool(v != 0);
    }
    const TriVal out = inst.cell->function().eval3(in);
    value[inst.output] =
        out == TriVal::kX ? -1 : (out == TriVal::kOne ? 1 : 0);
  }
  return value;
}

struct Course {
  NetId source;
  spice::Edge launch;
  std::vector<sta::PathStep> steps;  // vector_id unused

  std::string key(const netlist::Netlist& nl) const {
    sta::TruePath p;
    p.source = source;
    p.launch_edge = launch;
    p.steps = steps;
    return p.course_key(nl);
  }
};

/// All structural courses ending at a PO.
std::vector<Course> enumerate_courses(const netlist::Netlist& nl) {
  std::vector<Course> out;
  std::vector<sta::PathStep> steps;
  std::function<void(NetId)> dfs = [&](NetId net) {
    if (nl.net(net).is_primary_output) {
      for (const spice::Edge e : {spice::Edge::kRise, spice::Edge::kFall}) {
        Course c;
        c.source = steps.empty() ? net : NetId{};  // fixed below
        c.launch = e;
        c.steps = steps;
        out.push_back(c);
      }
    }
    for (const netlist::Fanout& f : nl.net(net).fanouts) {
      steps.push_back({f.inst, f.pin, 0});
      dfs(nl.instance(f.inst).output);
      steps.pop_back();
    }
  };
  for (NetId pi : nl.primary_inputs()) {
    steps.clear();
    const std::size_t before = out.size();
    dfs(pi);
    for (std::size_t i = before; i < out.size(); ++i) out[i].source = pi;
  }
  // Drop degenerate PI==PO empty courses.
  std::vector<Course> filtered;
  for (auto& c : out) {
    if (!c.steps.empty()) filtered.push_back(std::move(c));
  }
  return filtered;
}

struct BruteForce {
  bool steady = false;
  bool toggle = false;
};

BruteForce brute_force(const netlist::Netlist& nl, const Course& c) {
  BruteForce result;
  std::vector<NetId> others;
  for (NetId pi : nl.primary_inputs()) {
    if (pi != c.source) others.push_back(pi);
  }
  SASTA_CHECK(others.size() <= 16) << " circuit too large for brute force";
  for (std::uint32_t m = 0; m < (1u << others.size()); ++m) {
    std::vector<int> values(nl.num_nets(), 0);
    for (std::size_t i = 0; i < others.size(); ++i) {
      values[others[i]] = (m >> i) & 1;
    }
    const int v0 = c.launch == spice::Edge::kRise ? 0 : 1;
    values[c.source] = v0;
    const auto before = simulate(nl, values);
    values[c.source] = 1 - v0;
    const auto after = simulate(nl, values);

    bool toggles = true;
    for (const auto& s : c.steps) {
      if (before[nl.instance(s.inst).output] ==
          after[nl.instance(s.inst).output]) {
        toggles = false;
        break;
      }
    }
    if (!toggles) continue;
    result.toggle = true;
    // Hazard-free steadiness: side inputs equal before/after AND determined
    // in the ternary mid-frame (launching input at X).
    values[c.source] = -1;
    const auto mid = simulate3(nl, values);
    bool sides_steady = true;
    for (const auto& s : c.steps) {
      const netlist::Instance& inst = nl.instance(s.inst);
      for (int q = 0; q < inst.cell->num_inputs() && sides_steady; ++q) {
        if (q == s.pin) continue;
        const NetId side = inst.inputs[q];
        if (before[side] != after[side] || mid[side] != before[side]) {
          sides_steady = false;
        }
      }
      if (!sides_steady) break;
    }
    if (sides_steady) {
      result.steady = true;
      return result;  // both flags now true
    }
  }
  return result;
}

netlist::Netlist make_random_circuit(std::uint64_t seed) {
  netlist::GeneratorProfile p;
  p.name = "rnd" + std::to_string(seed);
  p.num_inputs = 7;
  p.num_outputs = 3;
  p.num_gates = 20;
  p.depth = 5;
  p.seed = seed;
  const auto prim = netlist::generate_iscas_like(p);
  return netlist::tech_map(prim, testing::test_library()).netlist;
}

class CrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossValidation, EnginesMatchBruteForce) {
  const netlist::Netlist nl = make_random_circuit(GetParam());
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");

  // Ground truth.
  std::map<std::string, BruteForce> truth;
  for (const Course& c : enumerate_courses(nl)) {
    truth[c.key(nl)] = brute_force(nl, c);
  }

  // Developed tool in exact mode (unlimited justification budget): these
  // circuits are small enough for the complete search.
  sta::PathFinderOptions popt;
  popt.justify_backtrack_budget = -1;
  sta::PathFinder finder(nl, cl, popt);
  std::set<std::string> dev;
  for (const auto& p : finder.find_all()) dev.insert(p.course_key(nl));

  // Invariant 1: developed == steady-sensitizable.
  int steady_total = 0;
  for (const auto& [key, bf] : truth) {
    if (bf.steady) {
      ++steady_total;
      EXPECT_TRUE(dev.count(key))
          << "developed tool missed steady-sensitizable course " << key;
    } else {
      EXPECT_FALSE(dev.count(key))
          << "developed tool reported non-steady-sensitizable course " << key;
    }
  }
  EXPECT_GT(steady_total, 0) << "degenerate circuit";

  // Baseline.
  baseline::BaselineOptions bopt;
  bopt.path_limit = 100000;
  bopt.backtrack_limit = -1;
  baseline::BaselineTool base(nl, cl, tech, bopt);
  const auto bres = base.run();

  int misidentified_false = 0;
  int over_accepted = 0;
  int true_count = 0;
  for (const auto& bp : bres.paths) {
    sta::TruePath tp;
    tp.source = bp.structural.source;
    tp.launch_edge = bp.structural.launch_edge;
    tp.steps = bp.structural.steps;
    const std::string key = tp.course_key(nl);
    ASSERT_TRUE(truth.count(key)) << "baseline explored unknown course";
    const BruteForce& bf = truth[key];
    if (bp.outcome.status == baseline::SensitizeStatus::kTrue) {
      ++true_count;
      if (!bf.toggle) ++over_accepted;  // static-sensitization optimism
    } else if (bf.steady) {
      // Invariant 2: a steady-sensitizable course must not be called false
      // ... except through the baseline's first-fit justification, which is
      // precisely the paper's "misidentified false paths" effect.  Either
      // way the developed tool has it (invariant 1).
      EXPECT_TRUE(dev.count(key));
      if (bp.outcome.status == baseline::SensitizeStatus::kFalse) {
        ++misidentified_false;
      }
    }
  }
  EXPECT_GT(true_count, 0);
  RecordProperty("baseline_over_accepted", over_accepted);
  RecordProperty("baseline_misidentified_false", misidentified_false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sasta
