// Cross-layer property tests tying the transistor-level *analysis* to the
// transistor-level *simulation*: the paper's Section III explanation
// (parallel drive + charge sharing) must predict the measured per-vector
// delay ordering, not just describe it.
#include <gtest/gtest.h>

#include <algorithm>

#include "cell/library_builder.h"
#include "cell/netstate_analysis.h"
#include "charlib/characterizer.h"
#include "charlib/sensitization.h"
#include "tech/technology.h"

namespace sasta {
namespace {

struct CaseResult {
  int vec_id;
  int drivers;
  int sharers;
  double delay;
};

/// Measures all vectors of (cell, pin) for the given input edge and returns
/// per-case conduction statistics + electrical delay.
std::vector<CaseResult> measure_cases(const std::string& cell_name, int pin,
                                      spice::Edge in_edge) {
  static const cell::Library lib = cell::build_standard_library();
  const cell::Cell& c = lib.cell(cell_name);
  const auto& tech = tech::technology("90nm");
  const auto vecs = charlib::enumerate_sensitization(c.function(), pin);
  std::vector<CaseResult> out;
  for (const auto& v : vecs) {
    std::vector<int> side(c.num_inputs(), 0);
    for (int q = 0; q < c.num_inputs(); ++q) {
      if (q != pin) side[q] = v.side_value(q) ? 1 : 0;
    }
    const auto report = cell::analyze_network_state(
        c, pin, in_edge == spice::Edge::kRise, side);
    const charlib::ModelPoint pt{2.0, tech.default_input_slew,
                                 tech.nominal_temp_c, tech.vdd};
    const auto m = charlib::measure_arc_point(c, tech, v, in_edge, pt);
    out.push_back({v.id, report.parallel_on_drivers,
                   report.charge_sharing_devices, m.delay_s});
  }
  return out;
}

class ComplexCellPhysics
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

// Property 1: the vector with the most conducting-path devices (strongest
// parallel drive) is never slower than the vector with the fewest drivers
// and charge sharing present.
TEST_P(ComplexCellPhysics, StrongestDriveBeatsChargeSharing) {
  const auto [cell_name, pin] = GetParam();
  for (const spice::Edge e : {spice::Edge::kRise, spice::Edge::kFall}) {
    const auto cases = measure_cases(cell_name, pin, e);
    ASSERT_GE(cases.size(), 2u);
    const auto& best_drive = *std::max_element(
        cases.begin(), cases.end(), [](const CaseResult& a, const CaseResult& b) {
          return std::make_pair(a.drivers, -a.sharers) <
                 std::make_pair(b.drivers, -b.sharers);
        });
    for (const auto& other : cases) {
      if (other.vec_id == best_drive.vec_id) continue;
      if (other.drivers < best_drive.drivers && other.sharers > 0) {
        EXPECT_LT(best_drive.delay, other.delay)
            << cell_name << " pin " << pin << " edge " << spice::edge_name(e)
            << ": case " << best_drive.vec_id + 1
            << " (drive " << best_drive.drivers << ") vs case "
            << other.vec_id + 1;
      }
    }
  }
}

// Property 2: the paper's headline orderings (Tables 3-4) hold.
TEST(ComplexCellPhysicsOrdering, Ao22InputAFallCase2Slowest) {
  const auto cases = measure_cases("AO22", 0, spice::Edge::kFall);
  ASSERT_EQ(cases.size(), 3u);
  // Case 1 fastest (both parallel PMOS on), Case 2 slowest (nC couples the
  // PDN-internal parasitic to the output).
  EXPECT_LT(cases[0].delay, cases[1].delay);
  EXPECT_LT(cases[0].delay, cases[2].delay);
  EXPECT_GT(cases[1].delay, cases[2].delay);
  // The spread is the paper's headline number: > 5 %.
  EXPECT_GT((cases[1].delay - cases[0].delay) / cases[0].delay, 0.05);
}

TEST(ComplexCellPhysicsOrdering, Oa12InputCRiseCase3FastestCase1Slowest) {
  const auto cases = measure_cases("OA12", 2, spice::Edge::kRise);
  ASSERT_EQ(cases.size(), 3u);
  // Paper Table 4 In-Rise: Case 1 slowest (pB output-adjacent charge
  // sharing), Case 3 fastest (both parallel NMOS on).
  EXPECT_GT(cases[0].delay, cases[1].delay);
  EXPECT_GT(cases[1].delay, cases[2].delay);
  EXPECT_GT((cases[0].delay - cases[2].delay) / cases[2].delay, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    StudyGates, ComplexCellPhysics,
    ::testing::Values(std::make_tuple("AO22", 0),   // paper Table 3
                      std::make_tuple("OA12", 2),   // paper Table 4
                      std::make_tuple("AOI22", 0),
                      std::make_tuple("OAI21", 2),
                      std::make_tuple("AO21", 2)));

}  // namespace
}  // namespace sasta
