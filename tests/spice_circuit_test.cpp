#include <gtest/gtest.h>

#include "spice/circuit.h"
#include "spice/sources.h"
#include "util/check.h"

namespace sasta::spice {
namespace {

TEST(Circuit, GroundIsNodeZeroAndDriven) {
  Circuit c;
  EXPECT_EQ(c.ground(), 0);
  EXPECT_TRUE(c.is_driven(c.ground()));
  EXPECT_DOUBLE_EQ(c.driven_voltage(c.ground(), 1e-9), 0.0);
}

TEST(Circuit, NodeNamesAreUnique) {
  Circuit c;
  const NodeId a1 = c.add_node("a");
  const NodeId a2 = c.add_node("a");
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(c.node("a"), a1);
  EXPECT_TRUE(c.has_node("a"));
  EXPECT_FALSE(c.has_node("b"));
  EXPECT_THROW(c.node("b"), util::Error);
  EXPECT_EQ(c.node_name(a1), "a");
  EXPECT_THROW(c.node_name(99), util::Error);
}

TEST(Circuit, DeviceTerminalValidation) {
  Circuit c;
  const NodeId a = c.add_node("a");
  MosfetInstance m;
  m.gate = a;
  m.drain = 42;  // out of range
  m.source = c.ground();
  EXPECT_THROW(c.add_mosfet(m), util::Error);
  m.drain = a;
  m.width_um = -1.0;
  EXPECT_THROW(c.add_mosfet(m), util::Error);
}

TEST(Circuit, PassiveValidation) {
  Circuit c;
  const NodeId a = c.add_node("a");
  EXPECT_THROW(c.add_resistor(a, a + 7, 100.0), util::Error);
  EXPECT_THROW(c.add_resistor(a, c.ground(), 0.0), util::Error);
  EXPECT_THROW(c.add_capacitor(a, c.ground(), -1e-15), util::Error);
  // Zero capacitance and self-loops are silently dropped, not stored.
  c.add_capacitor(a, c.ground(), 0.0);
  c.add_capacitor(a, a, 1e-15);
  EXPECT_TRUE(c.capacitors().empty());
  c.add_capacitor(a, c.ground(), 1e-15);
  EXPECT_EQ(c.capacitors().size(), 1u);
}

TEST(Circuit, DrivenNodeQueries) {
  Circuit c;
  const NodeId in = c.add_node("in");
  EXPECT_FALSE(c.is_driven(in));
  EXPECT_THROW(c.driven_voltage(in, 0.0), util::Error);
  c.drive(in, Pwl::ramp(0.0, 1.0, 1e-9, 1e-10));
  EXPECT_TRUE(c.is_driven(in));
  EXPECT_DOUBLE_EQ(c.driven_voltage(in, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(c.driven_voltage(in, 2e-9), 1.0);
  EXPECT_NEAR(c.driven_voltage(in, 1.05e-9), 0.5, 1e-12);
}

TEST(Circuit, InitialVoltages) {
  Circuit c;
  const NodeId n = c.add_node("n");
  EXPECT_DOUBLE_EQ(c.initial_voltage(n), 0.0);
  c.set_initial_voltage(n, 0.7);
  EXPECT_DOUBLE_EQ(c.initial_voltage(n), 0.7);
}

TEST(Pwl, RampAndDc) {
  const Pwl dc = Pwl::dc(1.2);
  EXPECT_DOUBLE_EQ(dc.at(-1.0), 1.2);
  EXPECT_DOUBLE_EQ(dc.at(5.0), 1.2);
  EXPECT_THROW(Pwl::ramp(0, 1, 0, 0.0), util::Error);
  // Non-monotone time points rejected.
  EXPECT_THROW(Pwl(std::vector<std::pair<double, double>>{{1.0, 0.0},
                                                          {0.5, 1.0}}),
               util::Error);
}

TEST(Pwl, BinarySearchInterpolation) {
  std::vector<std::pair<double, double>> pts;
  for (int i = 0; i <= 100; ++i) pts.emplace_back(i * 1e-12, i * 0.01);
  const Pwl w(pts);
  EXPECT_NEAR(w.at(50.5e-12), 0.505, 1e-12);
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(1.0), 1.0);
}

}  // namespace
}  // namespace sasta::spice
