// Word-packed trial evaluation: differential battery.
//
// The packed prescreen's contract is an *equivalence*, not mere soundness:
// a lane's goal conjunction is refuted by the packed sweep in a scenario
// iff the scalar implication closure (assign_steady_goals) would have
// conflicted that scenario for the same goals from the same base state.
// Equivalence is what makes --trial-lanes strictly result-neutral — the
// skip decision coincides exactly with the scalar "all scenarios dead"
// outcome, so the enumerated paths, every counter (vector_trials, cache_*,
// backtracks), and the rendered report stay bit-identical to
// --trial-lanes 1; only packed_sweeps / lanes_refuted and wall clock move.
//
// Layers under test, bottom up: TriPlanes/NinePlanes encoding,
// TruthTable::eval3_packed vs eval3 (exhaustive over {0,1,X}^n),
// PackedImplicationEngine vs assign_steady_goals on seeded random netlists
// from arbitrary DFS-prefix states, and the end-to-end result-identity
// matrix across --trial-lanes x cache mode x thread count.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "cell/boolfunc.h"
#include "netlist/iscas_gen.h"
#include "netlist/techmap.h"
#include "sta/assignment.h"
#include "sta/implication.h"
#include "sta/pathfinder.h"
#include "sta/report.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"
#include "test_paths.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace sasta::sta {
namespace {

using logicsys::NinePlanes;
using logicsys::NineVal;
using logicsys::TriPlanes;
using logicsys::TriVal;

constexpr TriVal kTriVals[] = {TriVal::kZero, TriVal::kOne, TriVal::kX};
constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};

netlist::Netlist generated_circuit(std::uint64_t seed, int pis = 12,
                                   int gates = 60, int depth = 7) {
  netlist::GeneratorProfile p;
  p.name = "pk" + std::to_string(seed);
  p.num_inputs = pis;
  p.num_outputs = 6;
  p.num_gates = gates;
  p.depth = depth;
  p.seed = seed;
  return netlist::tech_map(netlist::generate_iscas_like(p),
                           testing::test_library())
      .netlist;
}

// --- Plane encoding ---------------------------------------------------------

TEST(TriPlanesEncoding, FillLaneRoundTripAndDefaultIsX) {
  const TriPlanes fresh;
  for (const int lane : {0, 1, 31, 63}) {
    EXPECT_EQ(fresh.lane(lane), TriVal::kX);
  }
  for (const TriVal t : kTriVals) {
    const TriPlanes p = TriPlanes::fill(t);
    EXPECT_EQ(p.conflicts(), 0u);
    for (const int lane : {0, 7, 63}) EXPECT_EQ(p.lane(lane), t);
  }
}

TEST(TriPlanesEncoding, ConstrainAndMeetDetectPerLaneConflicts) {
  TriPlanes p;  // all-X
  p.constrain(3, true);
  p.constrain(5, false);
  EXPECT_EQ(p.lane(3), TriVal::kOne);
  EXPECT_EQ(p.lane(5), TriVal::kZero);
  EXPECT_EQ(p.lane(4), TriVal::kX);
  EXPECT_EQ(p.conflicts(), 0u);
  // Opposite constraint on lane 3 empties its possibility set.
  p.constrain(3, false);
  EXPECT_EQ(p.conflicts(), std::uint64_t{1} << 3);

  // Meet of complementary constants conflicts every lane.
  const TriPlanes bot =
      TriPlanes::fill(TriVal::kZero).meet(TriPlanes::fill(TriVal::kOne));
  EXPECT_EQ(bot.conflicts(), kAllLanes);
  // Meet with X is the identity.
  const TriPlanes one = TriPlanes::fill(TriVal::kOne);
  EXPECT_EQ(one.meet(TriPlanes::fill(TriVal::kX)), one);
}

TEST(NinePlanesEncoding, FillLaneRoundTripOverAllNineValues) {
  for (const TriVal i : kTriVals) {
    for (const TriVal f : kTriVals) {
      const NineVal v{i, f};
      const NinePlanes p = NinePlanes::fill(v);
      EXPECT_EQ(p.conflicts(), 0u);
      for (const int lane : {0, 15, 63}) EXPECT_EQ(p.lane(lane), v);
    }
  }
}

TEST(NinePlanesEncoding, SteadyConstraintHitsBothSlots) {
  NinePlanes p = NinePlanes::fill(NineVal::unknown());
  p.constrain_steady(2, true);
  EXPECT_EQ(p.lane(2), NineVal::stable1());
  // A steady-0 requirement against a RISE value (0,1) conflicts only in
  // the final slot; against FALL (1,0) only in the initial slot.
  NinePlanes rise = NinePlanes::fill(NineVal::rise());
  rise.constrain_steady(9, false);
  EXPECT_EQ(rise.conflicts(), std::uint64_t{1} << 9);
  EXPECT_EQ(rise.init.conflicts(), 0u);
  EXPECT_EQ(rise.fin.conflicts(), std::uint64_t{1} << 9);
}

// --- eval3_packed vs eval3 --------------------------------------------------

// Packs `combos` (each one TriVal per input) into per-input plane words,
// lane l carrying combos[l].
std::vector<TriPlanes> pack_inputs(
    const std::vector<std::vector<TriVal>>& combos, int num_inputs) {
  std::vector<TriPlanes> inputs(num_inputs, TriPlanes{0, 0});
  for (std::size_t l = 0; l < combos.size(); ++l) {
    for (int i = 0; i < num_inputs; ++i) {
      const TriVal t = combos[l][i];
      if (t != TriVal::kOne) inputs[i].can0 |= std::uint64_t{1} << l;
      if (t != TriVal::kZero) inputs[i].can1 |= std::uint64_t{1} << l;
    }
  }
  return inputs;
}

// Every lane of eval3_packed must agree with a scalar eval3 of that lane's
// inputs — exhaustively over all {0,1,X}^n combos, for random functions.
TEST(Eval3PackedDifferential, MatchesEval3ExhaustivelyOnRandomFunctions) {
  util::Rng rng(0x9A7E);
  for (const int n : {1, 2, 3, 4}) {
    for (int fn = 0; fn < 40; ++fn) {
      const std::uint64_t mask =
          n < 6 ? (std::uint64_t{1} << (1u << n)) - 1 : kAllLanes;
      const cell::TruthTable t =
          cell::TruthTable::from_bits(rng.next_u64() & mask, n);

      // All 3^n combos, chunked 64 lanes at a time.
      std::vector<std::vector<TriVal>> combos;
      int total = 1;
      for (int i = 0; i < n; ++i) total *= 3;
      for (int c = 0; c < total; ++c) {
        std::vector<TriVal> combo(n);
        int rest = c;
        for (int i = 0; i < n; ++i) {
          combo[i] = kTriVals[rest % 3];
          rest /= 3;
        }
        combos.push_back(std::move(combo));
      }
      for (std::size_t base = 0; base < combos.size(); base += 64) {
        const std::vector<std::vector<TriVal>> chunk(
            combos.begin() + base,
            combos.begin() + std::min(base + 64, combos.size()));
        const std::vector<TriPlanes> inputs = pack_inputs(chunk, n);
        const TriPlanes out = t.eval3_packed(inputs);
        // Lanes beyond the chunk were packed as empty sets and must come
        // out conflicted; populated lanes must not.
        const std::uint64_t populated =
            chunk.size() == 64 ? kAllLanes
                               : (std::uint64_t{1} << chunk.size()) - 1;
        EXPECT_EQ(out.conflicts(), ~populated) << "n=" << n << " fn=" << fn;
        for (std::size_t l = 0; l < chunk.size(); ++l) {
          EXPECT_EQ(out.lane(static_cast<int>(l)), t.eval3(chunk[l]))
              << "n=" << n << " fn=" << fn << " combo " << base + l;
        }
      }
    }
  }
}

// A lane whose input possibility set is already empty must evaluate to an
// empty output set (conflict propagates), while its neighbors are exact.
TEST(Eval3PackedDifferential, ConflictedInputLanePropagatesBottom) {
  util::Rng rng(0x50C0);
  for (int fn = 0; fn < 20; ++fn) {
    const cell::TruthTable t =
        cell::TruthTable::from_bits(rng.next_u64() & 0xFFFF, 4);
    std::vector<TriPlanes> inputs(4);  // all-X, all lanes
    inputs[2].can0 &= ~(std::uint64_t{1} << 5);  // lane 5: input 2 is bottom
    inputs[2].can1 &= ~(std::uint64_t{1} << 5);
    const TriPlanes out = t.eval3_packed(inputs);
    EXPECT_EQ(out.conflicts(), std::uint64_t{1} << 5);
    const TriVal all_x[] = {TriVal::kX, TriVal::kX, TriVal::kX, TriVal::kX};
    EXPECT_EQ(out.lane(0), t.eval3(all_x));
  }
}

// --- Packed engine vs scalar closure ----------------------------------------

// The core equivalence, fuzzed: from random DFS-prefix states (including
// states where one scenario is already dead), random goal conjunctions
// batched 64 lanes per sweep must be refuted by the packed engine in
// EXACTLY the scenarios the scalar closure conflicts — strict equality,
// both directions, per scenario.
TEST(PackedEngineDifferential, MatchesScalarClosureFromRandomPrefixStates) {
  long refuted_lanes = 0;
  long survived_lanes = 0;
  for (const std::uint64_t seed : {2u, 5u, 8u, 21u}) {
    const netlist::Netlist nl = generated_circuit(seed, 10, 40, 6);
    AssignmentState state(nl.num_nets());
    ImplicationEngine scalar(nl, state);
    PackedImplicationEngine packed(nl, state);
    util::Rng rng(seed * 7919 + 1);

    unsigned alive = kScenarioBoth;
    for (int round = 0; round < 24; ++round) {
      // Grow a random prefix: the packed engine must work from any
      // mid-search state, not just the empty one.  A prefix assignment may
      // kill a scenario; the sweep then only checks the survivors.
      for (int a = 0; a < 2 && alive != kScenarioNone; ++a) {
        const auto net =
            static_cast<netlist::NetId>(rng.next_below(nl.num_nets()));
        alive &= ~scalar.assign_steady(net, rng.next_bool()).conflict;
      }
      if (alive == kScenarioNone) {
        state.reset();
        alive = kScenarioBoth;
      }

      // One packed sweep over a full 64-lane batch of random conjunctions.
      std::vector<std::vector<Goal>> batch(64);
      packed.begin_sweep(kAllLanes, alive);
      for (int l = 0; l < 64; ++l) {
        const int k = 1 + static_cast<int>(rng.next_below(4));
        for (int g = 0; g < k; ++g) {
          batch[l].push_back(
              {static_cast<netlist::NetId>(rng.next_below(nl.num_nets())),
               rng.next_bool()});
        }
        for (const Goal& goal : batch[l]) packed.assert_goal(l, goal);
      }
      packed.sweep();

      for (int l = 0; l < 64; ++l) {
        const AssignmentState::Mark m = state.mark();
        const unsigned scalar_alive =
            scalar.assign_steady_goals(batch[l], alive);
        state.rollback(m);
        EXPECT_EQ(packed.refuted(l), alive & ~scalar_alive)
            << "seed " << seed << " round " << round << " lane " << l
            << " alive " << alive;
        if ((alive & ~scalar_alive) == alive) {
          ++refuted_lanes;
        } else {
          ++survived_lanes;
        }
      }
    }
  }
  // The fuzz must exercise both verdicts heavily for the equality above to
  // mean anything.
  EXPECT_GT(refuted_lanes, 500);
  EXPECT_GT(survived_lanes, 500);
}

// Inactive lanes never report refutations, and refuted() is always a
// subset of the sweep's alive mask.
TEST(PackedEngineDifferential, InactiveLanesAndDeadScenariosStaySilent) {
  const netlist::Netlist nl = generated_circuit(5, 10, 40, 6);
  AssignmentState state(nl.num_nets());
  PackedImplicationEngine packed(nl, state);
  util::Rng rng(0xBEEF);

  // Only lanes 0 and 2 active, only scenario R alive.
  packed.begin_sweep(0b101, kScenarioR);
  for (const int l : {0, 2}) {
    for (int g = 0; g < 3; ++g) {
      packed.assert_goal(
          l, {static_cast<netlist::NetId>(rng.next_below(nl.num_nets())),
              rng.next_bool()});
    }
  }
  packed.sweep();
  for (int l = 0; l < 64; ++l) {
    const unsigned r = packed.refuted(l);
    EXPECT_EQ(r & kScenarioF, kScenarioNone) << "lane " << l;
    if (l != 0 && l != 2) {
      EXPECT_EQ(r, kScenarioNone) << "lane " << l;
    }
  }
}

// --- End-to-end result neutrality -------------------------------------------

struct EnumRun {
  std::vector<std::string> fingerprints;
  PathFinderStats stats;
};

EnumRun enumerate(const netlist::Netlist& nl, int trial_lanes,
                  JustifyCacheMode mode, int threads) {
  PathFinderOptions opt;
  opt.num_threads = threads;
  opt.trial_lanes = trial_lanes;
  opt.justify_cache = mode;
  PathFinder finder(nl, testing::test_charlib("90nm"), opt);
  EnumRun run;
  std::vector<TruePath> paths;
  run.stats = finder.run([&](const TruePath& p) { paths.push_back(p); });
  run.fingerprints = testing::path_fingerprints(nl, paths);
  return run;
}

// The headline matrix: every (trial_lanes, cache mode, thread count)
// combination enumerates byte-identical paths in identical order with
// IDENTICAL search counters — vector_trials, every cache counter, and
// backtracks all match the scalar run exactly, because the packed skip
// fires precisely where the scalar closure would have refuted.  Only
// packed_sweeps / lanes_refuted may differ from zero, and those two are
// themselves thread-count-independent (prescreen batches are a pure
// function of the per-source DFS).
TEST(PackedTrialDifferential, LanesAreResultIdenticalAcrossMatrix) {
  for (const std::uint64_t seed : {3u, 27u}) {
    const netlist::Netlist nl = generated_circuit(seed);
    const EnumRun base = enumerate(nl, 1, JustifyCacheMode::kOff, 1);
    ASSERT_FALSE(base.fingerprints.empty()) << "seed " << seed;
    EXPECT_EQ(base.stats.packed_sweeps, 0);
    EXPECT_EQ(base.stats.lanes_refuted, 0);

    for (const JustifyCacheMode mode :
         {JustifyCacheMode::kOff, JustifyCacheMode::kShared,
          JustifyCacheMode::kPerWorker}) {
      const EnumRun scalar_ref = enumerate(nl, 1, mode, 1);
      // Within one cache mode the prescreen workload is a pure function of
      // the per-source DFS, so packed_sweeps is invariant across thread
      // counts (per lane width) and lanes_refuted — counting fully-refuted
      // *candidates*, not batches — is additionally invariant across lane
      // widths.  Across cache modes both legitimately differ: pruning
      // shrinks the DFS and with it the prescreen workload.
      long lanes_refuted = -1;
      for (const int lanes : {16, 32}) {
        long packed_sweeps = -1;
        for (const int threads : {1, 4, 8}) {
          const EnumRun run = enumerate(nl, lanes, mode, threads);
          EXPECT_EQ(run.fingerprints, base.fingerprints)
              << "seed " << seed << " lanes " << lanes << " mode "
              << static_cast<int>(mode) << " threads " << threads;
          EXPECT_EQ(run.stats.paths_recorded, base.stats.paths_recorded);
          EXPECT_EQ(run.stats.courses, base.stats.courses);
          // Strict neutrality: the packed runs attempt the same trials and
          // prune the same candidates as the scalar run of this mode
          // (verdict purity makes both thread-count-invariant).
          EXPECT_EQ(run.stats.vector_trials, scalar_ref.stats.vector_trials);
          EXPECT_EQ(run.stats.cache_prunes, scalar_ref.stats.cache_prunes);
          if (threads == 1) {
            // The full counter stream is only deterministic at one thread
            // (at higher counts the hit/miss split depends on interleaving
            // in kShared and on source partition in kPerWorker — for the
            // scalar baseline just the same); there it must match exactly.
            EXPECT_EQ(run.stats.backtracks, scalar_ref.stats.backtracks);
            EXPECT_EQ(run.stats.cache_hits, scalar_ref.stats.cache_hits);
            EXPECT_EQ(run.stats.cache_misses, scalar_ref.stats.cache_misses);
            EXPECT_EQ(run.stats.cache_inserts,
                      scalar_ref.stats.cache_inserts);
            EXPECT_EQ(run.stats.justify_limited,
                      scalar_ref.stats.justify_limited);
          }

          EXPECT_GT(run.stats.packed_sweeps, 0)
              << "packing enabled but no sweeps ran";
          if (packed_sweeps < 0) packed_sweeps = run.stats.packed_sweeps;
          EXPECT_EQ(run.stats.packed_sweeps, packed_sweeps)
              << "sweep count must not depend on thread count";
          if (lanes_refuted < 0) lanes_refuted = run.stats.lanes_refuted;
          EXPECT_EQ(run.stats.lanes_refuted, lanes_refuted)
              << "refuted-candidate count must not depend on lane width "
                 "or thread count";
        }
      }
      EXPECT_GT(lanes_refuted, 0)
          << "the sweep should refute at least some candidates on seed "
          << seed << " mode " << static_cast<int>(mode);
    }
  }
}

// Full-pipeline report-byte identity: the rendered timing report — slacks
// included — is bit-identical across the --trial-lanes x cache-mode x
// thread-count matrix (the packed extension of the justify-cache battery's
// neutrality matrix).
TEST(PackedTrialDifferential, TimingReportBytesIdenticalAcrossLanes) {
  const netlist::Netlist nl = generated_circuit(7, 12, 70);
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");

  auto render = [&](int trial_lanes, JustifyCacheMode mode, int threads) {
    StaToolOptions opt;
    opt.keep_worst = 10;
    opt.finder.num_threads = threads;
    opt.finder.trial_lanes = trial_lanes;
    opt.finder.justify_cache = mode;
    const StaResult res = StaTool(nl, cl, tech, opt).run();
    std::ostringstream os;
    for (const auto& tp : res.paths) {
      os << testing::timed_fingerprint(nl, tp) << "\n";
    }
    const TimingReport rep = build_timing_report(nl, res, 0.9e-9);
    os << format_timing_report(nl, rep);
    for (const auto& ep : rep.endpoints) {
      os << testing::hex_double(ep.slack) << "\n";
    }
    return os.str();
  };

  const std::string base = render(1, JustifyCacheMode::kOff, 1);
  ASSERT_FALSE(base.empty());
  for (const int lanes : {16, 32}) {
    for (const JustifyCacheMode mode :
         {JustifyCacheMode::kOff, JustifyCacheMode::kShared,
          JustifyCacheMode::kPerWorker}) {
      for (const int threads : {1, 4, 8}) {
        EXPECT_EQ(render(lanes, mode, threads), base)
            << "lanes " << lanes << " mode " << static_cast<int>(mode)
            << " threads " << threads;
      }
    }
  }
}

// Metrics key-set purity: the packed counters are registered only when
// packing is on, so a scalar run's metrics JSON is byte-compatible with
// pre-packing consumers; a packed run exports both new counters.
TEST(PackedTrialMetrics, CountersRegisteredOnlyWhenPackingIsOn) {
  const netlist::Netlist nl = generated_circuit(3);
  auto json_for = [&](int trial_lanes) {
    util::MetricsRegistry metrics;
    PathFinderOptions opt;
    opt.num_threads = 4;
    opt.trial_lanes = trial_lanes;
    opt.metrics = &metrics;
    PathFinder finder(nl, testing::test_charlib("90nm"), opt);
    finder.run([](const TruePath&) {});
    std::ostringstream os;
    metrics.write_json(os);
    return os.str();
  };
  const std::string scalar = json_for(1);
  EXPECT_EQ(scalar.find("pathfinder.packed_sweeps"), std::string::npos);
  EXPECT_EQ(scalar.find("pathfinder.lanes_refuted"), std::string::npos);
  const std::string packed = json_for(32);
  EXPECT_NE(packed.find("pathfinder.packed_sweeps"), std::string::npos);
  EXPECT_NE(packed.find("pathfinder.lanes_refuted"), std::string::npos);
}

}  // namespace
}  // namespace sasta::sta
