// Determinism and equivalence guarantees of the source-parallel path
// finder: every thread count must deliver the sequential result, and the
// N-worst pruned search must return exactly the exhaustive top-N set.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>

#include "netlist/bench_parser.h"
#include "netlist/iscas_gen.h"
#include "netlist/techmap.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"
#include "test_paths.h"
#include "util/thread_pool.h"

namespace sasta::sta {
namespace {

netlist::Netlist generated_circuit(std::uint64_t seed, int pis = 12,
                                   int gates = 60) {
  netlist::GeneratorProfile p;
  p.name = "par" + std::to_string(seed);
  p.num_inputs = pis;
  p.num_outputs = 6;
  p.num_gates = gates;
  p.depth = 7;
  p.seed = seed;
  return netlist::tech_map(netlist::generate_iscas_like(p),
                           testing::test_library())
      .netlist;
}

netlist::Netlist c17() {
  return netlist::tech_map(
             netlist::parse_bench_string(netlist::c17_bench_text(), "c17"),
             testing::test_library())
      .netlist;
}

using testing::hex_double;

std::vector<std::string> run_sta(const netlist::Netlist& nl,
                                 StaToolOptions opt) {
  StaTool tool(nl, testing::test_charlib("90nm"), tech::technology("90nm"),
               opt);
  const StaResult res = tool.run();
  std::vector<std::string> prints;
  prints.reserve(res.paths.size());
  for (const auto& tp : res.paths) {
    prints.push_back(testing::timed_fingerprint(nl, tp));
  }
  return prints;
}

// Unpruned enumeration: StaResult::paths must be identical — order
// included, delays bit-exact — for every thread count.
TEST(ParallelPathFinder, ThreadCountsProduceIdenticalResults) {
  const netlist::Netlist nl = generated_circuit(5);
  ASSERT_GE(nl.primary_inputs().size(), 8u);

  StaToolOptions opt;  // keep everything
  const auto sequential = run_sta(nl, opt);
  ASSERT_FALSE(sequential.empty());
  for (const int threads : {2, 8}) {
    StaToolOptions topt = opt;
    topt.finder.num_threads = threads;
    EXPECT_EQ(run_sta(nl, topt), sequential) << "threads=" << threads;
  }
}

// Same guarantee at the raw finder level: find_all delivers the exact
// sequential order (source PI index, then discovery order).
TEST(ParallelPathFinder, FindAllOrderMatchesSequential) {
  const netlist::Netlist nl = generated_circuit(21);
  const auto& cl = testing::test_charlib("90nm");

  PathFinderOptions seq_opt;
  seq_opt.num_threads = 1;
  PathFinder sequential(nl, cl, seq_opt);
  const auto want = sequential.find_all();
  ASSERT_FALSE(want.empty());

  PathFinderOptions par_opt;
  par_opt.num_threads = 4;
  PathFinder parallel(nl, cl, par_opt);
  const auto got = parallel.find_all();

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].full_key(nl), want[i].full_key(nl)) << "index " << i;
    EXPECT_EQ(got[i].pi_assignment, want[i].pi_assignment) << "index " << i;
  }
}

// Parallel workers must also agree on aggregate statistics for exhaustive
// runs (per-source counters are exact regardless of which worker ran them)
// — and on the paths themselves, down to every gate step, sensitization
// vector, and side-input PI assignment, not just the counts.
TEST(ParallelPathFinder, ExhaustiveStatsMatchSequential) {
  const netlist::Netlist nl = generated_circuit(9);
  const auto& cl = testing::test_charlib("90nm");

  PathFinderOptions opt;
  opt.num_threads = 1;
  PathFinder sequential(nl, cl, opt);
  std::vector<TruePath> want_paths;
  const PathFinderStats want =
      sequential.run([&](const TruePath& p) { want_paths.push_back(p); });

  opt.num_threads = 8;
  PathFinder parallel(nl, cl, opt);
  std::vector<TruePath> got_paths;
  const PathFinderStats got =
      parallel.run([&](const TruePath& p) { got_paths.push_back(p); });

  EXPECT_EQ(got.paths_recorded, want.paths_recorded);
  EXPECT_EQ(got.courses, want.courses);
  EXPECT_EQ(got.multi_vector_courses, want.multi_vector_courses);
  EXPECT_EQ(got.vector_trials, want.vector_trials);
  EXPECT_FALSE(got.truncated);
  ASSERT_FALSE(want_paths.empty());
  EXPECT_EQ(testing::path_fingerprints(nl, got_paths),
            testing::path_fingerprints(nl, want_paths));
}

/// Top-N (course_key, vector, delay) set of an StaTool run.
std::set<std::string> top_n_set(const netlist::Netlist& nl,
                                const StaResult& res) {
  std::set<std::string> keys;
  for (const auto& tp : res.paths) {
    keys.insert(tp.path.full_key(nl) + "|" + hex_double(tp.delay));
  }
  return keys;
}

class PrunedEquivalence : public ::testing::TestWithParam<int> {};

// The branch-and-bound pruned search must return exactly the same top-N
// (course_key, vector, delay) set as the unpruned exhaustive run — on c17
// and a generated ISCAS-style circuit, at several thread counts.
TEST_P(PrunedEquivalence, MatchesExhaustiveTopNSet) {
  const int threads = GetParam();
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");
  constexpr long kN = 8;

  const netlist::Netlist circuits[] = {c17(), generated_circuit(13, 14, 70)};
  for (const netlist::Netlist& nl : circuits) {
    StaToolOptions exhaustive;
    exhaustive.keep_worst = kN;
    exhaustive.finder.num_threads = threads;
    const StaResult full = StaTool(nl, cl, tech, exhaustive).run();
    ASSERT_FALSE(full.paths.empty());

    StaToolOptions pruned = exhaustive;
    pruned.finder.n_worst = kN;
    const StaResult res = StaTool(nl, cl, tech, pruned).run();

    EXPECT_EQ(top_n_set(nl, res), top_n_set(nl, full))
        << nl.name() << " threads=" << threads;
    EXPECT_LE(res.stats.vector_trials, full.stats.vector_trials);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PrunedEquivalence,
                         ::testing::Values(1, 2, 8));

// max_paths is an exact global quota: the workers collectively record
// exactly that many paths, never more.
TEST(ParallelPathFinder, MaxPathsIsExactAcrossWorkers) {
  const netlist::Netlist nl = generated_circuit(5);
  const auto& cl = testing::test_charlib("90nm");

  PathFinderOptions unlimited;
  PathFinder all(nl, cl, unlimited);
  const long total = all.run([](const TruePath&) {}).paths_recorded;
  ASSERT_GT(total, 20);

  PathFinderOptions capped;
  capped.max_paths = 20;
  capped.num_threads = 4;
  PathFinder finder(nl, cl, capped);
  std::atomic<long> delivered{0};
  const PathFinderStats stats =
      finder.run([&](const TruePath&) { ++delivered; });
  EXPECT_EQ(stats.paths_recorded, 20);
  EXPECT_EQ(delivered.load(), 20);
  EXPECT_TRUE(stats.truncated);
}

TEST(ThreadPool, RunsAllTasksAndWaitsIdle) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
  // The pool is reusable after wait_idle.
  pool.submit([&done] { done.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 101);
}

TEST(ThreadPool, ResolveMapsZeroToHardware) {
  EXPECT_GE(util::ThreadPool::hardware_threads(), 1u);
  EXPECT_EQ(util::ThreadPool::resolve(0),
            util::ThreadPool::hardware_threads());
  EXPECT_EQ(util::ThreadPool::resolve(3), 3u);
}

}  // namespace
}  // namespace sasta::sta
