// util::JsonValue: parse/build/serialize round-trips for the RPC layer.
//
// The protocol contract this type carries (docs/SERVER.md): single-line
// serialization with insertion-ordered object members (stable response
// bytes), shortest-round-trip formatting for doubles, and a parser that
// accepts exactly one document per line — trailing garbage is an error,
// never silently consumed framing.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace sasta::util {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(JsonValue::parse(text, &v, &err)) << text << ": " << err;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(JsonValue::parse(text, &v, &err)) << text;
  return err;
}

TEST(JsonParse, ScalarsAndNesting) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool(true));
  EXPECT_EQ(parse_ok("-42").as_long(), -42);
  EXPECT_DOUBLE_EQ(parse_ok("2.5e3").as_double(), 2500.0);
  EXPECT_EQ(parse_ok("\"hi\\nthere\"").as_string(), "hi\nthere");

  const JsonValue doc =
      parse_ok(R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("a").size(), 3u);
  EXPECT_EQ(doc.get("a").at(2).get("b").as_string(), "c");
  EXPECT_TRUE(doc.get("d").get("e").is_null());
  EXPECT_TRUE(doc.get("missing").is_null());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse_ok("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").as_string(), "\xc3\xa9");   // é
  EXPECT_EQ(parse_ok("\"\\u20ac\"").as_string(), "\xe2\x82\xac");  // €
}

TEST(JsonParse, ErrorsCarryByteOffsets) {
  EXPECT_NE(parse_err("{").find("at byte"), std::string::npos);
  parse_err("");
  parse_err("{\"a\": }");
  parse_err("[1, 2");
  parse_err("\"unterminated");
  parse_err("nul");
  parse_err("01");  // leading zeros are not JSON numbers
  // One document per line: trailing garbage must fail, never be ignored.
  parse_err("{} {}");
  parse_err("true false");
  // Trailing whitespace is fine.
  parse_ok("{\"a\": 1}  ");
}

TEST(JsonSerialize, SingleLineInsertionOrdered) {
  JsonValue obj = JsonValue::object();
  obj.set("z", JsonValue::number(1L));
  obj.set("a", JsonValue::boolean(true));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::string("x\ny"));
  arr.push_back(JsonValue());
  obj.set("list", std::move(arr));
  // Members serialize in insertion order (z before a), strings escape
  // their newlines, and the whole document is one line.
  EXPECT_EQ(obj.dump(), "{\"z\": 1, \"a\": true, \"list\": [\"x\\ny\", null]}");
  EXPECT_EQ(obj.dump().find('\n'), std::string::npos);

  // Overwriting keeps the original position.
  obj.set("z", JsonValue::number(2L));
  EXPECT_EQ(obj.dump(), "{\"z\": 2, \"a\": true, \"list\": [\"x\\ny\", null]}");
}

TEST(JsonSerialize, NumbersUseCanonicalFormatting) {
  // Whole doubles print as integers; long and double agree.
  EXPECT_EQ(JsonValue::number(3.0).dump(), "3");
  EXPECT_EQ(JsonValue::number(3L).dump(), "3");
  EXPECT_EQ(JsonValue::number(-0.5).dump(), "-0.5");
  // Round-trip: dump → parse → dump is a fixed point.
  const std::string once = JsonValue::number(71.148726721168813).dump();
  EXPECT_EQ(parse_ok(once).dump(), once);
}

TEST(JsonSerialize, RawEmbedsVerbatim) {
  JsonValue obj = JsonValue::object();
  obj.set("inner", JsonValue::raw("{\"pre\": [1, 2]}"));
  EXPECT_EQ(obj.dump(), "{\"inner\": {\"pre\": [1, 2]}}");
  // And what it embeds parses back.
  parse_ok(obj.dump());
}

TEST(JsonRoundTrip, WireExamples) {
  for (const char* line : {
           R"({"id": 7, "method": "analyze", "params": {"paths": 3}})",
           R"({"version": "sasta-rpc-v1", "id": null, "error": {"code": "E_PARSE", "message": "x"}})",
           R"([0.001, 0.01, 0.1, 1, 10, 60])",
       }) {
    const JsonValue doc = parse_ok(line);
    EXPECT_EQ(doc.dump(), line);
  }
}

}  // namespace
}  // namespace sasta::util
