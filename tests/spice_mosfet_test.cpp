#include <gtest/gtest.h>

#include <cmath>

#include "spice/mosfet.h"
#include "tech/technology.h"
#include "util/rng.h"

namespace sasta::spice {
namespace {

MosParamsAtTemp nominal_nmos() {
  return adjust_for_temperature(tech::technology("90nm").nmos, 25.0);
}

TEST(Mosfet, CutoffCurrentNegligible) {
  const auto p = nominal_nmos();
  const MosEval e = eval_mosfet(MosType::kNmos, p, 3.0, /*vg=*/0.0,
                                /*vd=*/1.0, /*vs=*/0.0);
  // The smoothed overdrive leaves a deliberate subthreshold-like leakage;
  // it must be orders of magnitude below the on-current (~10s of uA).
  EXPECT_LT(std::fabs(e.ids), 1e-7);
}

TEST(Mosfet, SaturationCurrentPositiveAndIncreasingInVg) {
  const auto p = nominal_nmos();
  const MosEval lo = eval_mosfet(MosType::kNmos, p, 3.0, 0.6, 1.0, 0.0);
  const MosEval hi = eval_mosfet(MosType::kNmos, p, 3.0, 1.0, 1.0, 0.0);
  EXPECT_GT(lo.ids, 0.0);
  EXPECT_GT(hi.ids, lo.ids);
}

TEST(Mosfet, LinearRegionSmallerThanSaturation) {
  const auto p = nominal_nmos();
  const MosEval lin = eval_mosfet(MosType::kNmos, p, 3.0, 1.0, 0.05, 0.0);
  const MosEval sat = eval_mosfet(MosType::kNmos, p, 3.0, 1.0, 1.0, 0.0);
  EXPECT_GT(sat.ids, lin.ids);
  EXPECT_GT(lin.ids, 0.0);
}

TEST(Mosfet, SymmetricInDrainSource) {
  // Reversing drain and source must negate the current exactly.
  const auto p = nominal_nmos();
  const MosEval fwd = eval_mosfet(MosType::kNmos, p, 3.0, 0.9, 0.7, 0.2);
  const MosEval rev = eval_mosfet(MosType::kNmos, p, 3.0, 0.9, 0.2, 0.7);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-15);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto p = nominal_nmos();
  // PMOS with source at VDD, gate low, drain mid: conducts "upward".
  const MosEval e = eval_mosfet(MosType::kPmos, p, 3.0, /*vg=*/0.0,
                                /*vd=*/0.5, /*vs=*/1.0);
  // Current drain->source must be negative (current flows source->drain).
  EXPECT_LT(e.ids, 0.0);
}

TEST(Mosfet, TemperatureSlowsDevice) {
  const auto& raw = tech::technology("90nm").nmos;
  const auto cold = adjust_for_temperature(raw, 0.0);
  const auto hot = adjust_for_temperature(raw, 125.0);
  const MosEval e_cold = eval_mosfet(MosType::kNmos, cold, 3.0, 1.0, 1.0, 0.0);
  const MosEval e_hot = eval_mosfet(MosType::kNmos, hot, 3.0, 1.0, 1.0, 0.0);
  // Mobility loss dominates at full overdrive: hot current is lower.
  EXPECT_LT(e_hot.ids, e_cold.ids);
  // Vth decreases with temperature.
  EXPECT_LT(hot.vth, cold.vth);
}

// Property test: analytic derivatives must match finite differences over a
// broad random sweep of bias points, for both polarities.
TEST(Mosfet, DerivativesMatchFiniteDifferences) {
  const auto p = nominal_nmos();
  util::Rng rng(2024);
  const double h = 1e-6;
  int checked = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const MosType type = rng.next_bool() ? MosType::kNmos : MosType::kPmos;
    const double vg = rng.next_double() * 1.4 - 0.2;
    const double vd = rng.next_double() * 1.4 - 0.2;
    const double vs = rng.next_double() * 1.4 - 0.2;
    const MosEval e = eval_mosfet(type, p, 3.0, vg, vd, vs);
    // Central differences; the model is C1 so a small h suffices.
    auto fd = [&](double dvg, double dvd, double dvs) {
      const MosEval hi =
          eval_mosfet(type, p, 3.0, vg + dvg, vd + dvd, vs + dvs);
      const MosEval lo =
          eval_mosfet(type, p, 3.0, vg - dvg, vd - dvd, vs - dvs);
      return (hi.ids - lo.ids) / (2 * h);
    };
    auto tol = [&](double analytic) {
      return 3e-2 * std::fabs(analytic) + 1e-7;
    };
    EXPECT_NEAR(fd(h, 0, 0), e.d_vg, tol(e.d_vg))
        << "vg=" << vg << " vd=" << vd << " vs=" << vs;
    EXPECT_NEAR(fd(0, h, 0), e.d_vd, tol(e.d_vd))
        << "vg=" << vg << " vd=" << vd << " vs=" << vs;
    EXPECT_NEAR(fd(0, 0, h), e.d_vs, tol(e.d_vs))
        << "vg=" << vg << " vd=" << vd << " vs=" << vs;
    ++checked;
  }
  EXPECT_EQ(checked, 500);
}

TEST(Mosfet, CurrentContinuousAcrossSaturationBoundary) {
  const auto p = nominal_nmos();
  const double vgs = 0.8;
  const double vdsat = p.vdsat_gamma * (vgs - p.vth);
  const MosEval below = eval_mosfet(MosType::kNmos, p, 3.0, vgs,
                                    vdsat - 1e-9, 0.0);
  const MosEval above = eval_mosfet(MosType::kNmos, p, 3.0, vgs,
                                    vdsat + 1e-9, 0.0);
  EXPECT_NEAR(below.ids, above.ids, 1e-9 * std::fabs(below.ids) + 1e-15);
  EXPECT_NEAR(below.d_vd, above.d_vd, 1e-4 * std::fabs(below.ids) + 1e-9);
}

}  // namespace
}  // namespace sasta::spice
