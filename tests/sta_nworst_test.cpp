#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/iscas_gen.h"
#include "netlist/techmap.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"
#include "test_charlib.h"

namespace sasta::sta {
namespace {

netlist::Netlist mid_circuit(std::uint64_t seed) {
  netlist::GeneratorProfile p;
  p.name = "nw" + std::to_string(seed);
  p.num_inputs = 12;
  p.num_outputs = 6;
  p.num_gates = 60;
  p.depth = 7;
  p.seed = seed;
  return netlist::tech_map(netlist::generate_iscas_like(p),
                           testing::test_library())
      .netlist;
}

std::vector<double> top_delays(const StaResult& res, std::size_t n) {
  std::vector<double> d;
  for (const auto& tp : res.paths) d.push_back(tp.delay);
  std::sort(d.rbegin(), d.rend());
  if (d.size() > n) d.resize(n);
  return d;
}

class NWorst : public ::testing::TestWithParam<std::uint64_t> {};

// The branch-and-bound N-worst mode must return exactly the same N worst
// delays as exhaustive enumeration, with strictly less search effort.
TEST_P(NWorst, MatchesExhaustiveTopN) {
  const netlist::Netlist nl = mid_circuit(GetParam());
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");
  constexpr long kN = 10;

  StaToolOptions exhaustive;
  exhaustive.keep_worst = kN;
  StaTool full(nl, cl, tech, exhaustive);
  const StaResult full_res = full.run();
  ASSERT_FALSE(full_res.paths.empty());

  StaToolOptions pruned = exhaustive;
  pruned.finder.n_worst = kN;
  StaTool nworst(nl, cl, tech, pruned);
  const StaResult res = nworst.run();

  const auto want = top_delays(full_res, kN);
  const auto got = top_delays(res, kN);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-15) << "rank " << i;
  }

  // Pruning must not EXPLORE more than the exhaustive run; on non-trivial
  // circuits it explores strictly less.
  EXPECT_LE(res.stats.vector_trials, full_res.stats.vector_trials);
  EXPECT_LE(res.stats.paths_recorded, full_res.stats.paths_recorded);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NWorst, ::testing::Values(3, 7, 11, 19));

TEST(NWorst, PrunesSubstantiallyOnWiderCircuit) {
  netlist::GeneratorProfile p;
  p.name = "nwbig";
  p.num_inputs = 20;
  p.num_outputs = 8;
  p.num_gates = 120;
  p.depth = 8;
  p.seed = 99;
  const auto nl = netlist::tech_map(netlist::generate_iscas_like(p),
                                    testing::test_library())
                      .netlist;
  const auto& cl = testing::test_charlib("90nm");
  const auto& tech = tech::technology("90nm");

  StaToolOptions exhaustive;
  exhaustive.keep_worst = 5;
  const auto full = StaTool(nl, cl, tech, exhaustive).run();

  StaToolOptions pruned = exhaustive;
  pruned.finder.n_worst = 5;
  const auto res = StaTool(nl, cl, tech, pruned).run();

  ASSERT_FALSE(full.paths.empty());
  EXPECT_NEAR(res.critical().delay, full.critical().delay, 1e-15);
  // Expect a real reduction in recorded paths (the whole point).
  EXPECT_LT(res.stats.paths_recorded, full.stats.paths_recorded);
}

}  // namespace
}  // namespace sasta::sta
