#include <gtest/gtest.h>

#include <set>

#include "cell/library_builder.h"
#include "charlib/characterizer.h"
#include "test_charlib.h"
#include "netlist/bench_parser.h"
#include "netlist/levelize.h"
#include "netlist/techmap.h"
#include "sta/sta_tool.h"
#include "tech/technology.h"

namespace sasta::sta {
namespace {

using netlist::NetId;

const cell::Library& lib() { return sasta::testing::test_library(); }

const charlib::CharLibrary& charlib() {
  return sasta::testing::test_charlib("90nm");
}

/// Logic-simulates the netlist; pi_values maps net -> 0/1.
std::vector<int> simulate(const netlist::Netlist& nl,
                          const std::vector<int>& net_values_in) {
  std::vector<int> value = net_values_in;
  const auto lv = netlist::levelize(nl);
  for (netlist::InstId ii : lv.topo_order) {
    const netlist::Instance& inst = nl.instance(ii);
    std::uint32_t m = 0;
    for (std::size_t p = 0; p < inst.inputs.size(); ++p) {
      if (value[inst.inputs[p]]) m |= 1u << p;
    }
    value[inst.output] = inst.cell->function().value(m) ? 1 : 0;
  }
  return value;
}

/// Validates a reported true path: for EVERY completion of the unassigned
/// PIs, toggling the source PI must toggle every net along the path (the
/// definition of a sensitized path under steady side inputs).
void validate_path(const netlist::Netlist& nl, const TruePath& p) {
  std::vector<NetId> free_pis;
  std::vector<int> base(nl.num_nets(), 0);
  std::set<NetId> assigned;
  for (const auto& [net, val] : p.pi_assignment) {
    base[net] = val ? 1 : 0;
    assigned.insert(net);
  }
  for (NetId pi : nl.primary_inputs()) {
    if (pi != p.source && !assigned.count(pi)) free_pis.push_back(pi);
  }
  ASSERT_LE(free_pis.size(), 12u) << "test circuit too large to enumerate";

  for (std::uint32_t m = 0; m < (1u << free_pis.size()); ++m) {
    std::vector<int> values = base;
    for (std::size_t i = 0; i < free_pis.size(); ++i) {
      values[free_pis[i]] = (m >> i) & 1;
    }
    // Initial and final values of the launching input.
    const int v0 = p.launch_edge == spice::Edge::kRise ? 0 : 1;
    values[p.source] = v0;
    const auto before = simulate(nl, values);
    values[p.source] = 1 - v0;
    const auto after = simulate(nl, values);
    // Every net along the path must toggle.
    NetId net = p.source;
    EXPECT_NE(before[net], after[net]);
    for (const PathStep& s : p.steps) {
      net = nl.instance(s.inst).output;
      EXPECT_NE(before[net], after[net])
          << "path node " << nl.net(net).name << " did not toggle (m=" << m
          << ")";
    }
  }
}

TEST(PathFinder, C17FindsTruePathsAndValidates) {
  const auto prim = netlist::parse_bench_string(netlist::c17_bench_text());
  const auto mapped = netlist::tech_map(prim, lib());
  PathFinder finder(mapped.netlist, charlib());
  const auto paths = finder.find_all();
  ASSERT_GT(paths.size(), 0u);
  // All-NAND2 circuit: one vector per input, so every course has exactly
  // one combination.
  PathFinder finder2(mapped.netlist, charlib());
  PathFinderStats stats = finder2.run([](const TruePath&) {});
  EXPECT_EQ(stats.paths_recorded, static_cast<long>(paths.size()));
  EXPECT_EQ(stats.multi_vector_courses, 0);
  EXPECT_EQ(stats.courses, stats.paths_recorded);
  EXPECT_FALSE(stats.truncated);
  for (const auto& p : paths) validate_path(mapped.netlist, p);
}

/// Path through an AO22 input A with three justifiable side vectors.
struct Ao22Fixture {
  netlist::Netlist nl{"ao22fix"};
  NetId a, b, c, d, e, n1, n2, out;
  Ao22Fixture() {
    a = nl.add_net("a");
    b = nl.add_net("b");
    c = nl.add_net("c");
    d = nl.add_net("d");
    e = nl.add_net("e");
    n1 = nl.add_net("n1");
    n2 = nl.add_net("n2");
    out = nl.add_net("out");
    for (NetId pi : {a, b, c, d, e}) nl.mark_primary_input(pi);
    nl.add_instance("g0", lib().find("INV"), {a}, n1);
    nl.add_instance("g1", lib().find("AO22"), {n1, b, c, d}, n2);
    nl.add_instance("g2", lib().find("NAND2"), {n2, e}, out);
    nl.mark_primary_output(out);
  }
};

TEST(PathFinder, EnumeratesAllSensitizationVectorCombos) {
  Ao22Fixture f;
  PathFinder finder(f.nl, charlib());
  const auto paths = finder.find_all();
  // Paths launched from 'a': 3 AO22 vectors x 2 directions = 6.
  int from_a = 0;
  std::set<int> vector_ids;
  for (const auto& p : paths) {
    if (p.source != f.a) continue;
    ++from_a;
    ASSERT_EQ(p.steps.size(), 3u);
    EXPECT_EQ(p.steps[1].pin, 0);  // AO22 input A
    vector_ids.insert(p.steps[1].vector_id);
    validate_path(f.nl, p);
  }
  EXPECT_EQ(from_a, 6);
  EXPECT_EQ(vector_ids.size(), 3u);
}

TEST(PathFinder, MultiVectorCourseCounting) {
  Ao22Fixture f;
  PathFinder finder(f.nl, charlib());
  PathFinderStats stats = finder.run([](const TruePath&) {});
  // Courses from 'a' (2, one per direction) are multi-vector.
  EXPECT_GE(stats.multi_vector_courses, 2);
  EXPECT_GT(stats.paths_recorded, stats.courses);
}

TEST(PathFinder, FalsePathExcluded) {
  // z = AND2(a, NOT(a)): constant 0, no true path through either pin.
  netlist::Netlist nl("fp");
  const NetId a = nl.add_net("a");
  const NetId na = nl.add_net("na");
  const NetId z = nl.add_net("z");
  nl.mark_primary_input(a);
  nl.add_instance("g0", lib().find("INV"), {a}, na);
  nl.add_instance("g1", lib().find("AND2"), {a, na}, z);
  nl.mark_primary_output(z);
  PathFinder finder(nl, charlib());
  const auto paths = finder.find_all();
  EXPECT_TRUE(paths.empty());
}

TEST(PathFinder, ReconvergentConstraintLimitsVectors) {
  // AO22 with C and D tied through an inverter: C = x, D = NOT(x).
  // For input A: (B,C,D) = (1,0,0) impossible; (1,1,0) and (1,0,1) remain.
  netlist::Netlist nl("recon");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId x = nl.add_net("x");
  const NetId nx = nl.add_net("nx");
  const NetId z = nl.add_net("z");
  for (NetId pi : {a, b, x}) nl.mark_primary_input(pi);
  nl.add_instance("g0", lib().find("INV"), {x}, nx);
  nl.add_instance("g1", lib().find("AO22"), {a, b, x, nx}, z);
  nl.mark_primary_output(z);
  PathFinder finder(nl, charlib());
  const auto paths = finder.find_all();
  std::set<int> vecs;
  for (const auto& p : paths) {
    if (p.source != a) continue;
    vecs.insert(p.steps[0].vector_id);
    validate_path(nl, p);
  }
  EXPECT_EQ(vecs.size(), 2u);      // Case 1 (C=D=0) is logically impossible
  EXPECT_EQ(vecs.count(0), 0u);    // vector id 0 == Case 1
}

TEST(PathFinder, MaxPathsTruncates) {
  Ao22Fixture f;
  PathFinderOptions opt;
  opt.max_paths = 3;
  PathFinder finder(f.nl, charlib(), opt);
  PathFinderStats stats = finder.run([](const TruePath&) {});
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.paths_recorded, 3);
}

TEST(StaTool, DelaysOrderedAndVectorsDiffer) {
  Ao22Fixture f;
  StaToolOptions opt;
  StaTool tool(f.nl, charlib(), tech::technology("90nm"), opt);
  const StaResult res = tool.run();
  ASSERT_GT(res.paths.size(), 0u);
  for (std::size_t i = 1; i < res.paths.size(); ++i) {
    EXPECT_GE(res.paths[i - 1].delay, res.paths[i].delay);
  }
  EXPECT_GT(res.critical().delay, 0.0);
  // Among the 'a'-sourced falling-launch paths, different AO22 vectors give
  // different delays (the whole point of vector-aware STA).
  std::set<long> distinct;
  for (const auto& tp : res.paths) {
    if (tp.path.source != f.a ||
        tp.path.launch_edge != spice::Edge::kFall) {
      continue;
    }
    distinct.insert(static_cast<long>(tp.delay * 1e15));
  }
  EXPECT_GE(distinct.size(), 2u);
}

TEST(StaTool, KeepWorstLimitsStorage) {
  Ao22Fixture f;
  StaToolOptions opt;
  opt.keep_worst = 2;
  StaTool tool(f.nl, charlib(), tech::technology("90nm"), opt);
  const StaResult res = tool.run();
  EXPECT_EQ(res.paths.size(), 2u);
  // Must be the two slowest: run unrestricted and compare.
  StaToolOptions opt_all;
  StaTool tool_all(f.nl, charlib(), tech::technology("90nm"), opt_all);
  const StaResult res_all = tool_all.run();
  EXPECT_NEAR(res.paths[0].delay, res_all.paths[0].delay, 1e-18);
  EXPECT_NEAR(res.paths[1].delay, res_all.paths[1].delay, 1e-18);
}

TEST(StaTool, StageDelaysSumToTotal) {
  Ao22Fixture f;
  StaTool tool(f.nl, charlib(), tech::technology("90nm"));
  const StaResult res = tool.run();
  for (const auto& tp : res.paths) {
    double sum = 0;
    for (double d : tp.stage_delays) sum += d;
    EXPECT_NEAR(sum, tp.delay, 1e-15);
    EXPECT_EQ(tp.stage_delays.size(), tp.path.steps.size());
  }
}

}  // namespace
}  // namespace sasta::sta
