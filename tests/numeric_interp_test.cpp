#include <gtest/gtest.h>

#include "numeric/interp.h"
#include "numeric/stats.h"

namespace sasta::num {
namespace {

TEST(Interp, BracketIndex) {
  const std::vector<double> axis{0, 1, 2, 4};
  EXPECT_EQ(bracket_index(axis, -1), 0u);
  EXPECT_EQ(bracket_index(axis, 0.5), 0u);
  EXPECT_EQ(bracket_index(axis, 1.0), 1u);
  EXPECT_EQ(bracket_index(axis, 3.0), 2u);
  EXPECT_EQ(bracket_index(axis, 9.0), 2u);
}

TEST(Interp, LinearInterpolatesAndExtrapolates) {
  const std::vector<double> xs{0, 1, 2};
  const std::vector<double> ys{0, 10, 40};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 25.0);
  // Linear extrapolation beyond both ends.
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 3.0), 70.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, -1.0), -10.0);
}

TEST(Interp, BilinearExactOnBilinearFunction) {
  const std::vector<double> rows{1, 2, 4};
  const std::vector<double> cols{10, 20};
  Matrix t(3, 2);
  auto f = [](double r, double c) { return 3 + 2 * r + 0.5 * c + 0.1 * r * c; };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      t(i, j) = f(rows[i], cols[j]);
    }
  }
  EXPECT_NEAR(interp_bilinear(rows, cols, t, 1.5, 15.0), f(1.5, 15.0), 1e-12);
  EXPECT_NEAR(interp_bilinear(rows, cols, t, 3.0, 12.0), f(3.0, 12.0), 1e-12);
  // Corners are exact.
  EXPECT_NEAR(interp_bilinear(rows, cols, t, 4.0, 20.0), f(4.0, 20.0), 1e-12);
}

TEST(Interp, DegenerateAxes) {
  Matrix one(1, 1);
  one(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(interp_bilinear({5}, {3}, one, 0, 0), 7.0);
  Matrix row(1, 2);
  row(0, 0) = 1.0;
  row(0, 1) = 3.0;
  EXPECT_DOUBLE_EQ(interp_bilinear({5}, {0, 1}, row, 9.0, 0.5), 2.0);
}

TEST(Stats, RelErrorAccumulator) {
  RelErrorAccumulator acc;
  acc.add(11.0, 10.0);  // 10%
  acc.add(9.0, 10.0);   // 10%
  acc.add(10.0, 20.0);  // 50%
  const ErrorStats s = acc.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.mean, (0.1 + 0.1 + 0.5) / 3, 1e-12);
  EXPECT_NEAR(s.max, 0.5, 1e-12);
}

TEST(Stats, MeanStdMax) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.2909944487358056, 1e-12);
  const std::vector<double> ys{-5, 3};
  EXPECT_DOUBLE_EQ(max_abs(ys), 5.0);
}

}  // namespace
}  // namespace sasta::num
