#include <gtest/gtest.h>

#include "netlist/bench_parser.h"
#include "netlist/bench_writer.h"
#include "util/check.h"

namespace sasta::netlist {
namespace {

TEST(BenchParser, ParsesC17) {
  const PrimNetlist nl = parse_bench_string(c17_bench_text(), "c17");
  EXPECT_EQ(nl.inputs.size(), 5u);
  EXPECT_EQ(nl.outputs.size(), 2u);
  EXPECT_EQ(nl.gates.size(), 6u);
  for (const auto& g : nl.gates) {
    EXPECT_EQ(g.op, PrimOp::kNand);
    EXPECT_EQ(g.inputs.size(), 2u);
  }
}

TEST(BenchParser, HandlesCommentsAndBlanks) {
  const std::string text = R"(
# full line comment
INPUT(a)   # trailing comment
INPUT(b)
OUTPUT(z)

z = AND(a, b)
)";
  const PrimNetlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.inputs.size(), 2u);
  EXPECT_EQ(nl.gates.size(), 1u);
  EXPECT_EQ(nl.gates[0].op, PrimOp::kAnd);
}

TEST(BenchParser, AllGateTypes) {
  const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(z)
n1 = AND(a, b)
n2 = NAND(a, b)
n3 = OR(a, b)
n4 = NOR(a, b)
n5 = NOT(a)
n6 = BUFF(b)
n7 = XOR(a, b)
n8 = XNOR(a, b)
z = AND(n1, n2, n3, n4, n5, n6, n7, n8)
)";
  const PrimNetlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.gates.size(), 9u);
  EXPECT_EQ(nl.gates[4].op, PrimOp::kNot);
  EXPECT_EQ(nl.gates[5].op, PrimOp::kBuf);
  EXPECT_EQ(nl.gates[8].inputs.size(), 8u);
}

TEST(BenchParser, RejectsUnknownGate) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n"),
               util::Error);
}

TEST(BenchParser, RejectsBadArity) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a)\n"),
               util::Error);
  EXPECT_THROW(parse_bench_string("INPUT(a)\nINPUT(b)\nOUTPUT(z)\nz = NOT(a, b)\n"),
               util::Error);
}

TEST(BenchParser, RejectsUndrivenSignal) {
  EXPECT_THROW(parse_bench_string("INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)\n"),
               util::Error);
}

TEST(BenchParser, RejectsMalformedLine) {
  EXPECT_THROW(parse_bench_string("INPUT a\n"), util::Error);
  EXPECT_THROW(parse_bench_string("z AND(a, b)\n"), util::Error);
}

// Regression: gate lines whose LHS merely *begins* with a port keyword
// (common in MCNC/ISCAS89-derived names) used to be swallowed as port
// declarations, registering the garbage signal "a, b" and failing later
// with a misleading "undriven" error.
TEST(BenchParser, GateLhsStartingWithPortKeywordParsesAsGate) {
  const std::string text = R"(
INPUT(a)
INPUT(b)
OUTPUT(OUTPUTX)
OUTPUT(INPUTY)
OUTPUTX = AND(a, b)
INPUTY = NAND(a, OUTPUTX)
)";
  const PrimNetlist nl = parse_bench_string(text);
  EXPECT_EQ(nl.inputs.size(), 2u);
  EXPECT_EQ(nl.outputs.size(), 2u);
  ASSERT_EQ(nl.gates.size(), 2u);
  EXPECT_EQ(nl.gates[0].op, PrimOp::kAnd);
  EXPECT_EQ(nl.gates[0].inputs.size(), 2u);
  EXPECT_EQ(nl.gates[1].op, PrimOp::kNand);
  // No garbage "a, b" signal was registered.
  for (const auto& name : nl.signal_names) {
    EXPECT_EQ(name.find(','), std::string::npos) << "garbage signal " << name;
  }
}

// A truly malformed port declaration still fails with its line number.
TEST(BenchParser, MalformedPortReportsLineNumber) {
  try {
    parse_bench_string("INPUT(a)\nOUTPUT(z\nz = BUF(a)\n");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("malformed port"), std::string::npos) << msg;
  }
}

TEST(BenchWriter, RoundTrip) {
  const PrimNetlist original = parse_bench_string(c17_bench_text(), "c17");
  const std::string text = write_bench_string(original);
  const PrimNetlist reparsed = parse_bench_string(text, "c17");
  EXPECT_EQ(reparsed.inputs.size(), original.inputs.size());
  EXPECT_EQ(reparsed.outputs.size(), original.outputs.size());
  ASSERT_EQ(reparsed.gates.size(), original.gates.size());
  for (std::size_t i = 0; i < original.gates.size(); ++i) {
    EXPECT_EQ(reparsed.gates[i].op, original.gates[i].op);
    EXPECT_EQ(reparsed.gates[i].inputs.size(),
              original.gates[i].inputs.size());
  }
}

}  // namespace
}  // namespace sasta::netlist
