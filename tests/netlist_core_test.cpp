#include <gtest/gtest.h>

#include "cell/library_builder.h"
#include "netlist/levelize.h"
#include "netlist/netlist.h"
#include "util/check.h"

namespace sasta::netlist {
namespace {

const cell::Library& lib() {
  static const cell::Library l = cell::build_standard_library();
  return l;
}

/// a, b -> NAND2 -> n1; n1, c -> NAND2 -> out.
Netlist two_nands() {
  Netlist nl("two_nands");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId c = nl.add_net("c");
  const NetId n1 = nl.add_net("n1");
  const NetId out = nl.add_net("out");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.mark_primary_input(c);
  nl.add_instance("g0", lib().find("NAND2"), {a, b}, n1);
  nl.add_instance("g1", lib().find("NAND2"), {n1, c}, out);
  nl.mark_primary_output(out);
  return nl;
}

TEST(Netlist, BuildAndValidate) {
  const Netlist nl = two_nands();
  EXPECT_NO_THROW(nl.validate());
  EXPECT_EQ(nl.num_instances(), 2);
  EXPECT_EQ(nl.num_nets(), 5);
  EXPECT_EQ(nl.primary_inputs().size(), 3u);
  EXPECT_EQ(nl.primary_outputs().size(), 1u);
  // Fanout bookkeeping.
  const Net& n1 = nl.net(nl.net_id("n1"));
  ASSERT_EQ(n1.fanouts.size(), 1u);
  EXPECT_EQ(n1.fanouts[0].pin, 0);
  EXPECT_EQ(n1.driver, 0);
}

TEST(Netlist, DoubleDriverRejected) {
  Netlist nl("bad");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId n = nl.add_net("n");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_instance("g0", lib().find("INV"), {a}, n);
  EXPECT_THROW(nl.add_instance("g1", lib().find("INV"), {b}, n), util::Error);
}

TEST(Netlist, PiCannotBeDriven) {
  Netlist nl("bad2");
  const NetId a = nl.add_net("a");
  const NetId n = nl.add_net("n");
  nl.mark_primary_input(a);
  nl.mark_primary_input(n);
  EXPECT_THROW(nl.add_instance("g0", lib().find("INV"), {a}, n), util::Error);
}

TEST(Netlist, UndrivenNetFailsValidation) {
  Netlist nl("bad3");
  const NetId a = nl.add_net("a");
  const NetId n = nl.add_net("floating");
  nl.mark_primary_input(a);
  (void)n;
  EXPECT_THROW(nl.validate(), util::Error);
}

TEST(Netlist, PinCountMismatchRejected) {
  Netlist nl("bad4");
  const NetId a = nl.add_net("a");
  const NetId n = nl.add_net("n");
  nl.mark_primary_input(a);
  EXPECT_THROW(nl.add_instance("g0", lib().find("NAND2"), {a}, n),
               util::Error);
}

TEST(Levelize, OrdersAndLevels) {
  const Netlist nl = two_nands();
  const Levelization lv = levelize(nl);
  ASSERT_EQ(lv.topo_order.size(), 2u);
  EXPECT_EQ(lv.topo_order[0], 0);
  EXPECT_EQ(lv.topo_order[1], 1);
  EXPECT_EQ(lv.net_level[nl.net_id("a")], 0);
  EXPECT_EQ(lv.net_level[nl.net_id("n1")], 1);
  EXPECT_EQ(lv.net_level[nl.net_id("out")], 2);
  EXPECT_EQ(lv.max_level, 2);
}

TEST(Levelize, ReachesOutput) {
  Netlist nl("reach");
  const NetId a = nl.add_net("a");
  const NetId b = nl.add_net("b");
  const NetId n1 = nl.add_net("n1");
  const NetId n2 = nl.add_net("n2");
  nl.mark_primary_input(a);
  nl.mark_primary_input(b);
  nl.add_instance("g0", lib().find("INV"), {a}, n1);
  nl.add_instance("g1", lib().find("INV"), {b}, n2);  // dangles
  nl.mark_primary_output(n1);
  const auto reach = reaches_output(nl);
  EXPECT_TRUE(reach[a]);
  EXPECT_TRUE(reach[n1]);
  EXPECT_FALSE(reach[b]);
  EXPECT_FALSE(reach[n2]);
}

TEST(Netlist, ComplexGateCount) {
  Netlist nl("cplx");
  std::vector<NetId> ins;
  for (int i = 0; i < 4; ++i) {
    const NetId n = nl.add_net("i" + std::to_string(i));
    nl.mark_primary_input(n);
    ins.push_back(n);
  }
  const NetId z1 = nl.add_net("z1");
  const NetId z2 = nl.add_net("z2");
  nl.add_instance("g0", lib().find("AO22"), ins, z1);
  nl.add_instance("g1", lib().find("NAND2"), {ins[0], z1}, z2);
  nl.mark_primary_output(z2);
  EXPECT_EQ(nl.complex_gate_count(), 1);
}

}  // namespace
}  // namespace sasta::netlist
