#include <gtest/gtest.h>

#include "charlib/liberty_writer.h"
#include "tech/technology.h"
#include "test_charlib.h"

namespace sasta::charlib {
namespace {

TEST(Liberty, ExportsStructurallySoundLibrary) {
  const std::string lib = write_liberty_string(
      testing::test_charlib("90nm"), testing::test_library(),
      tech::technology("90nm"));
  // Header and units.
  EXPECT_NE(lib.find("library (sasta_90nm)"), std::string::npos);
  EXPECT_NE(lib.find("delay_model : table_lookup;"), std::string::npos);
  EXPECT_NE(lib.find("time_unit : \"1ns\";"), std::string::npos);
  // Every cell appears.
  for (const auto& c : testing::test_library().cells()) {
    EXPECT_NE(lib.find("cell (" + c.name() + ")"), std::string::npos)
        << c.name();
  }
  // Functions exported.
  EXPECT_NE(lib.find("function : \"((A*B)+(C*D))\";"), std::string::npos);
  // Balanced braces.
  long depth = 0;
  for (char ch : lib) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Liberty, UnatenessFollowsArcPolarity) {
  const std::string lib = write_liberty_string(
      testing::test_charlib("90nm"), testing::test_library(),
      tech::technology("90nm"));
  // INV is negative unate; AND2 positive unate.
  const auto inv_pos = lib.find("cell (INV)");
  const auto and_pos = lib.find("cell (AND2)");
  ASSERT_NE(inv_pos, std::string::npos);
  ASSERT_NE(and_pos, std::string::npos);
  const std::string inv_block = lib.substr(inv_pos, 2000);
  EXPECT_NE(inv_block.find("timing_sense : negative_unate;"),
            std::string::npos);
  const std::string and_block = lib.substr(and_pos, 2000);
  EXPECT_NE(and_block.find("timing_sense : positive_unate;"),
            std::string::npos);
}

TEST(Liberty, TablesCarryPlausibleNanoseconds) {
  const std::string lib = write_liberty_string(
      testing::test_charlib("90nm"), testing::test_library(),
      tech::technology("90nm"));
  // Axis values present (ns range 0.01 .. 1) and pin capacitances in pF.
  EXPECT_NE(lib.find("index_1 (\""), std::string::npos);
  EXPECT_NE(lib.find("capacitance : "), std::string::npos);
}

}  // namespace
}  // namespace sasta::charlib
